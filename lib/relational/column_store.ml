(* Dictionary-encoded columnar view of a table, with shared caches for
   the projection/partition workloads dependency discovery issues.

   Equality semantics deliberately mirror the row-based primitives:
   codes are interned with the polymorphic hashtable (structural
   equality on [Value.t]), exactly what [Table.distinct_table] and the
   naive FD check key their hashtables with, so every engine agrees
   verdict-for-verdict. *)

type column = {
  codes : int array;  (* per row; 0 is the reserved NULL code *)
  dict : Value.t array;  (* code -> value; dict.(0) = Null *)
  nulls : int;  (* rows holding NULL in this column *)
  exact_dict : bool;
      (* every dict code >= 1 still occurs in [codes]; incremental
         deletes leave dead dictionary entries behind and clear this,
         sending single-attribute distinct reads through the codes *)
}

type partition = { groups : int array array; p_rows : int }

type stats = {
  columns_encoded : int;
  distinct_sets : int;
  partitions : int;
  fd_verdicts : int;
  join_counts : int;
}

(* Retained state of a completed fused FD sweep (see [sweep_fused]):
   the LHS key -> group-id tables plus, per surviving (true-verdict)
   RHS attribute, the per-group representative value. Enough to
   re-check a verdict against appended rows in O(delta) — each new row
   either joins an existing group (compare against the representative)
   or founds a new one (seed it). Dropped on any delete: group
   emptiness is not tracked, so a deletion could leave a stale
   representative behind. *)
type group_keys =
  | Scalar_keys of (int, int) Hashtbl.t * (Value.t, int) Hashtbl.t
      (* single-attribute LHS: unboxed Int fast path + boxed rest *)
  | Tuple_keys of (Value.t list, int) Hashtbl.t

type sweep_state = {
  mutable sw_groups : int;
  sw_keys : group_keys;
  sw_lhs_pos : int array;
  sw_reprs : (string, Value.t array ref) Hashtbl.t;
      (* rhs attr -> representative per group id; grown on demand *)
}

type t = {
  mutable table : Table.t;
  mutable uid : int;  (* unique per store content: cross-store keys *)
  mutable built_version : int;
  mutable n_rows : int;
  columns : column option array;  (* by attribute position, lazy *)
  interns : (Value.t, int) Hashtbl.t option array;
      (* per-column value -> code, retained (or lazily rebuilt from the
         dictionary) so appended rows intern in O(1) per cell *)
  memoized : bool;  (* stashed in Table.ext: worth retaining interns
                       and sweep states for incremental refresh *)
  distinct_sets : (string list, (Value.t list, unit) Hashtbl.t) Hashtbl.t;
  witnesses : (string list, int) Hashtbl.t;  (* NULL-free rows per attrs *)
  partitions : (string list, partition) Hashtbl.t;
  fd_verdicts : (string list * string list, bool) Hashtbl.t;
  fd_sweeps : (string list, sweep_state) Hashtbl.t;
  join_counts : (string list * int * string list, int) Hashtbl.t;
}

type Table.ext += Store of t

let uid_counter = Atomic.make 0

(* process-wide delta-maintenance counters, surfaced by
   [Engine.describe] and the serve job status *)
type delta_stats = {
  rows_absorbed : int;
  incremental_refreshes : int;
  full_rebuilds : int;
}

let absorbed_ctr = Atomic.make 0
let incremental_ctr = Atomic.make 0
let rebuild_ctr = Atomic.make 0

let delta_stats () =
  {
    rows_absorbed = Atomic.get absorbed_ctr;
    incremental_refreshes = Atomic.get incremental_ctr;
    full_rebuilds = Atomic.get rebuild_ctr;
  }

let reset_delta_stats () =
  Atomic.set absorbed_ctr 0;
  Atomic.set incremental_ctr 0;
  Atomic.set rebuild_ctr 0

let default_delta_fraction = 0.25

let make_store ~memoized table =
  let arity = Relation.arity (Table.schema table) in
  {
    table;
    uid = Atomic.fetch_and_add uid_counter 1;
    built_version = Table.version table;
    n_rows = Table.cardinality table;
    columns = Array.make arity None;
    interns = Array.make arity None;
    memoized;
    distinct_sets = Hashtbl.create 8;
    witnesses = Hashtbl.create 8;
    partitions = Hashtbl.create 8;
    fd_verdicts = Hashtbl.create 16;
    fd_sweeps = Hashtbl.create 8;
    join_counts = Hashtbl.create 8;
  }

let build table = make_store ~memoized:false table

let table t = t.table
let table_version t = t.built_version
let uid t = t.uid

(* ------------------------------------------------------------------ *)
(* encoding                                                            *)
(* ------------------------------------------------------------------ *)

let encode t pos =
  let rows = Table.rows t.table in
  let codes = Array.make t.n_rows 0 in
  let intern : (Value.t, int) Hashtbl.t = Hashtbl.create 256 in
  let rev_dict = ref [ Value.Null ] in
  let next = ref 1 in
  let nulls = ref 0 in
  Array.iteri
    (fun i tup ->
      let v = tup.(pos) in
      if Value.is_null v then incr nulls
      else
        match Hashtbl.find_opt intern v with
        | Some c -> codes.(i) <- c
        | None ->
            let c = !next in
            incr next;
            Hashtbl.add intern v c;
            rev_dict := v :: !rev_dict;
            codes.(i) <- c)
    rows;
  ( { codes;
      dict = Array.of_list (List.rev !rev_dict);
      nulls = !nulls;
      exact_dict = true },
    intern )

let pos_of t a =
  try Relation.attr_index (Table.schema t.table) a
  with Not_found ->
    invalid_arg
      (Printf.sprintf "Column_store(%s): unknown attribute %s"
         (Table.schema t.table).Relation.name a)

(* memoized stores keep the encode pass's intern table so appended
   rows can extend the dictionary in O(1) per cell *)
let stash_encoded t pos (c, intern) =
  t.columns.(pos) <- Some c;
  if t.memoized then t.interns.(pos) <- Some intern;
  c

let column t a =
  let pos = pos_of t a in
  match t.columns.(pos) with
  | Some c -> c
  | None -> stash_encoded t pos (encode t pos)

let columns t attrs = Array.of_list (List.map (column t) attrs)

(* Encode every still-missing column among [attrs], fanning the
   independent per-column passes over [pool] when one is given.
   [encode] is a pure function of the (frozen) row array, and each task
   writes only its own slot of a local result array, so scheduling
   cannot change the dictionaries: codes are interned in row order per
   column whatever the domain count. *)
let ensure_columns ?pool t attrs =
  let missing =
    List.sort_uniq Int.compare
      (List.filter_map
         (fun a ->
           let p = pos_of t a in
           if t.columns.(p) = None then Some p else None)
         attrs)
  in
  match missing with
  | [] -> ()
  | [ p ] -> ignore (stash_encoded t p (encode t p))
  | ps -> (
      let ps = Array.of_list ps in
      match pool with
      | Some pool when Domain_pool.size pool > 1 ->
          (* force the table's row-array cache on the submitting domain
             so workers only read it; workers return their results and
             only the submitter writes store slots *)
          ignore (Table.rows t.table);
          let encoded = Domain_pool.map_array pool (fun p -> encode t p) ps in
          Array.iteri (fun i p -> ignore (stash_encoded t p encoded.(i))) ps
      | _ -> Array.iter (fun p -> ignore (stash_encoded t p (encode t p))) ps)

(* ------------------------------------------------------------------ *)
(* distinct sets                                                       *)
(* ------------------------------------------------------------------ *)

(* decode a code tuple back to the value list [Table.distinct_table]
   would have keyed with *)
let decode cols code_list =
  List.map2 (fun (c : column) code -> c.dict.(code)) (Array.to_list cols)
    code_list

let compute_distinct t attrs =
  match attrs with
  | [ a ] ->
      (* single column: the dictionary is the distinct set; no row
         pass — unless incremental deletes left dead entries behind,
         in which case one pass over the codes finds the live ones *)
      let c = column t a in
      let set = Hashtbl.create (max 16 (Array.length c.dict)) in
      if c.exact_dict then
        Array.iteri
          (fun code v -> if code > 0 then Hashtbl.add set [ v ] ())
          c.dict
      else begin
        let live = Array.make (Array.length c.dict) false in
        Array.iter (fun code -> live.(code) <- true) c.codes;
        Array.iteri
          (fun code v -> if code > 0 && live.(code) then Hashtbl.add set [ v ] ())
          c.dict
      end;
      (set, t.n_rows - c.nulls)
  | _ ->
      let cols = columns t attrs in
      let width = Array.length cols in
      let seen : (int list, unit) Hashtbl.t =
        Hashtbl.create (max 16 (t.n_rows / 4))
      in
      let witnesses = ref 0 in
      for row = 0 to t.n_rows - 1 do
        let null = ref false in
        let key = ref [] in
        for j = width - 1 downto 0 do
          let code = cols.(j).codes.(row) in
          if code = 0 then null := true else key := code :: !key
        done;
        if not !null then begin
          incr witnesses;
          Hashtbl.replace seen !key ()
        end
      done;
      let set = Hashtbl.create (max 16 (Hashtbl.length seen)) in
      Hashtbl.iter (fun key () -> Hashtbl.add set (decode cols key) ()) seen;
      (set, !witnesses)

let distinct_set t attrs =
  match Hashtbl.find_opt t.distinct_sets attrs with
  | Some set -> set
  | None ->
      let set, witnesses = compute_distinct t attrs in
      Hashtbl.add t.distinct_sets attrs set;
      Hashtbl.add t.witnesses attrs witnesses;
      set

let witness_count t attrs =
  match Hashtbl.find_opt t.witnesses attrs with
  | Some n -> n
  | None ->
      ignore (distinct_set t attrs);
      Hashtbl.find t.witnesses attrs

let count_distinct t attrs = Hashtbl.length (distinct_set t attrs)

let project_distinct t attrs =
  Hashtbl.fold (fun k () acc -> k :: acc) (distinct_set t attrs) []

let unique t attrs =
  let w = witness_count t attrs in
  w > 0 && count_distinct t attrs = w

let equijoin_distinct_count t1 a1 t2 a2 =
  if List.length a1 <> List.length a2 then
    invalid_arg "Column_store.equijoin_distinct_count: width mismatch";
  let key = (a1, t2.uid, a2) in
  match Hashtbl.find_opt t1.join_counts key with
  | Some n -> n
  | None ->
      let d1 = distinct_set t1 a1 and d2 = distinct_set t2 a2 in
      let small, large =
        if Hashtbl.length d1 <= Hashtbl.length d2 then (d1, d2) else (d2, d1)
      in
      let n =
        Hashtbl.fold
          (fun k () acc -> if Hashtbl.mem large k then acc + 1 else acc)
          small 0
      in
      Hashtbl.add t1.join_counts key n;
      n

(* ------------------------------------------------------------------ *)
(* partitions and FD checks                                            *)
(* ------------------------------------------------------------------ *)

let compute_partition t attrs =
  let cols = columns t attrs in
  let width = Array.length cols in
  let grouped : (int list, int list ref) Hashtbl.t =
    Hashtbl.create (max 16 (t.n_rows / 4))
  in
  for row = 0 to t.n_rows - 1 do
    let null = ref false in
    let key = ref [] in
    for j = width - 1 downto 0 do
      let code = cols.(j).codes.(row) in
      if code = 0 then null := true else key := code :: !key
    done;
    if not !null then
      match Hashtbl.find_opt grouped !key with
      | Some cell -> cell := row :: !cell
      | None -> Hashtbl.add grouped !key (ref [ row ])
  done;
  let groups =
    Hashtbl.fold
      (fun _ cell acc ->
        match !cell with
        | [] | [ _ ] -> acc
        | members -> Array.of_list (List.rev members) :: acc)
      grouped []
  in
  { groups = Array.of_list groups; p_rows = t.n_rows }

(* Partition straight off the row array: one hash pass over values, no
   dictionary encode. Used when the attributes are not already encoded —
   a batched FD check reads its LHS exactly once, so paying an encode
   pass before partitioning would double the cost. Groups are stripped
   (size >= 2) exactly like [compute_partition]; group order can differ
   between the two builders, which no consumer observes (every verdict
   and error count folds over all groups). Structural equality on
   [Value.t] is the same relation the dictionaries intern with, so the
   grouping is identical. *)
let compute_partition_rows t attrs =
  let rows = Table.rows t.table in
  let strip cells =
    let groups =
      List.fold_left
        (fun acc cell ->
          match !cell with
          | [] | [ _ ] -> acc
          | members -> Array.of_list (List.rev members) :: acc)
        [] cells
    in
    { groups = Array.of_list groups; p_rows = t.n_rows }
  in
  match List.map (pos_of t) attrs with
  | [ pos ] ->
      (* single-attribute LHS, the dominant §6.2.2 shape: scalar keys *)
      let grouped : (Value.t, int list ref) Hashtbl.t =
        Hashtbl.create (max 16 (t.n_rows / 4))
      in
      for row = 0 to t.n_rows - 1 do
        let v = rows.(row).(pos) in
        if not (Value.is_null v) then
          match Hashtbl.find_opt grouped v with
          | Some cell -> cell := row :: !cell
          | None -> Hashtbl.add grouped v (ref [ row ])
      done;
      strip (Hashtbl.fold (fun _ cell acc -> cell :: acc) grouped [])
  | poss ->
      let poss = Array.of_list poss in
      let grouped : (Value.t list, int list ref) Hashtbl.t =
        Hashtbl.create (max 16 (t.n_rows / 4))
      in
      for row = 0 to t.n_rows - 1 do
        let tup = rows.(row) in
        let null = ref false in
        let key = ref [] in
        for j = Array.length poss - 1 downto 0 do
          let v = tup.(poss.(j)) in
          if Value.is_null v then null := true else key := v :: !key
        done;
        if not !null then
          match Hashtbl.find_opt grouped !key with
          | Some cell -> cell := row :: !cell
          | None -> Hashtbl.add grouped !key (ref [ row ])
      done;
      strip (Hashtbl.fold (fun _ cell acc -> cell :: acc) grouped [])

let partition t attrs =
  match Hashtbl.find_opt t.partitions attrs with
  | Some p -> p
  | None ->
      (* codes already paid for -> int-keyed pass; otherwise partition
         the raw values and skip the encode entirely *)
      let all_encoded =
        List.for_all (fun a -> t.columns.(pos_of t a) <> None) attrs
      in
      let p =
        if all_encoded then compute_partition t attrs
        else compute_partition_rows t attrs
      in
      Hashtbl.add t.partitions attrs p;
      p

let partition_error p =
  Array.fold_left (fun acc g -> acc + Array.length g - 1) 0 p.groups

let fd_holds t ~lhs ~rhs =
  let key = (lhs, rhs) in
  match Hashtbl.find_opt t.fd_verdicts key with
  | Some v -> v
  | None ->
      let p = partition t lhs in
      let rcols = columns t rhs in
      let same r0 r =
        Array.for_all (fun (c : column) -> c.codes.(r0) = c.codes.(r)) rcols
      in
      let verdict =
        Array.for_all
          (fun g ->
            let r0 = g.(0) in
            Array.for_all (fun r -> same r0 r) g)
          p.groups
      in
      Hashtbl.add t.fd_verdicts key verdict;
      verdict

(* Dense group-id map of the [lhs] partition: [gid.(row)] is the row's
   group index, -1 on NULL-LHS rows. Reuses a memoized stripped
   partition when one exists (its dropped singletons land on -1, which
   is sound: a one-row group cannot refute any candidate); otherwise
   one hash pass over the raw values — no member lists, no dictionary
   encode. *)
let lhs_gid t lhs =
  let gid = Array.make t.n_rows (-1) in
  match Hashtbl.find_opt t.partitions lhs with
  | Some p ->
      Array.iteri
        (fun g members -> Array.iter (fun r -> gid.(r) <- g) members)
        p.groups;
      (gid, Array.length p.groups)
  | None ->
      let rows = Table.rows t.table in
      let next = ref 0 in
      (match List.map (pos_of t) lhs with
      | [ pos ] ->
          (* single-attribute LHS, the dominant §6.2.2 shape *)
          let ids : (Value.t, int) Hashtbl.t =
            Hashtbl.create (max 16 (t.n_rows / 4))
          in
          for row = 0 to t.n_rows - 1 do
            let v = rows.(row).(pos) in
            if not (Value.is_null v) then (
              match Hashtbl.find_opt ids v with
              | Some g -> gid.(row) <- g
              | None ->
                  Hashtbl.add ids v !next;
                  gid.(row) <- !next;
                  incr next)
          done
      | poss ->
          let poss = Array.of_list poss in
          let ids : (Value.t list, int) Hashtbl.t =
            Hashtbl.create (max 16 (t.n_rows / 4))
          in
          for row = 0 to t.n_rows - 1 do
            let tup = rows.(row) in
            let null = ref false in
            let key = ref [] in
            for j = Array.length poss - 1 downto 0 do
              let v = tup.(poss.(j)) in
              if Value.is_null v then null := true else key := v :: !key
            done;
            if not !null then (
              match Hashtbl.find_opt ids !key with
              | Some g -> gid.(row) <- g
              | None ->
                  Hashtbl.add ids !key !next;
                  gid.(row) <- !next;
                  incr next)
          done);
      (gid, !next)

(* One candidate answered by a row-major sweep: remember the first RHS
   value seen per LHS group, refute on the first disagreement. NULL
   compares equal to NULL under structural equality, exactly like the
   reserved 0 code. Reads only frozen arrays and allocates its own
   scratch — safe from worker domains. *)
let sweep_one rows (gid : int array) n_groups pos =
  let repr = Array.make n_groups Value.Null in
  let seen = Array.make n_groups false in
  let ok = ref true in
  let row = ref 0 in
  let n = Array.length gid in
  while !ok && !row < n do
    let g = gid.(!row) in
    if g >= 0 then begin
      let v = rows.(!row).(pos) in
      if not seen.(g) then begin
        seen.(g) <- true;
        repr.(g) <- v
      end
      else begin
        let r = repr.(g) in
        if not (r == v || Value.equal r v) then ok := false
      end
    end;
    incr row
  done;
  !ok

(* Every candidate answered in one fused row-major pass: each tuple is
   fetched once and compared against every still-live candidate's
   representative; a mismatch kills just that candidate, and the pass
   stops once all are dead. The live set is kept compact (dead
   candidates are swap-removed), so once the easy refutations land in
   the first few hundred rows the per-row work shrinks to just the
   surviving candidates. Physical equality short-circuits the
   structural compare — sound, since [==] implies [Value.equal]. *)
let sweep_all rows (gid : int array) n_groups (positions : int array) =
  let m = Array.length positions in
  let verdict = Array.make m true in
  let repr = Array.map (fun _ -> Array.make n_groups Value.Null) positions in
  let seen = Array.make n_groups false in
  let live = Array.init m Fun.id in
  let n_live = ref m in
  let row = ref 0 in
  let n = Array.length gid in
  while !n_live > 0 && !row < n do
    let g = gid.(!row) in
    if g >= 0 then begin
      let tup = rows.(!row) in
      if not seen.(g) then begin
        seen.(g) <- true;
        for j = 0 to !n_live - 1 do
          let k = live.(j) in
          repr.(k).(g) <- tup.(positions.(k))
        done
      end
      else begin
        let j = ref 0 in
        while !j < !n_live do
          let k = live.(!j) in
          let v = tup.(positions.(k)) in
          let r = repr.(k).(g) in
          if r == v || Value.equal r v then incr j
          else begin
            verdict.(k) <- false;
            decr n_live;
            live.(!j) <- live.(!n_live)
          end
        done
      end
    end;
    incr row
  done;
  verdict

(* One fused pass answering every candidate without materializing the
   group-id array: each row's LHS key is hashed to its group (created
   on first sight, at which point the row seeds every live candidate's
   representative) and compared in place against the live candidates'
   representatives. Saves a full second pass over the rows compared to
   [lhs_gid] + [sweep_all]; used on the sequential path when no
   memoized partition is available.

   With [?retain] (the RHS attribute names aligned with [positions]),
   a completed pass with at least one surviving candidate leaves its
   key tables and the survivors' representative arrays behind as the
   LHS's [sweep_state] — the structure the delta passes re-check
   appended rows against. A pass that early-exited (every candidate
   refuted) retains nothing: its key tables are incomplete, and there
   is no true verdict to maintain. *)
let sweep_fused ?retain t lhs rows (positions : int array) =
  let m = Array.length positions in
  let verdict = Array.make m true in
  (* group count is unknown until the pass ends; n_rows bounds it *)
  let cap = max 1 t.n_rows in
  let repr = Array.map (fun _ -> Array.make cap Value.Null) positions in
  let live = Array.init m Fun.id in
  let n_live = ref m in
  let next = ref 0 in
  let keys_out = ref None in
  let seed tup g =
    for j = 0 to !n_live - 1 do
      let k = live.(j) in
      repr.(k).(g) <- tup.(positions.(k))
    done
  in
  let refine tup g =
    let j = ref 0 in
    while !j < !n_live do
      let k = live.(!j) in
      let v = tup.(positions.(k)) in
      let r = repr.(k).(g) in
      if r == v || Value.equal r v then incr j
      else begin
        verdict.(k) <- false;
        decr n_live;
        live.(!j) <- live.(!n_live)
      end
    done
  in
  (match List.map (pos_of t) lhs with
  | [ pos ] ->
      (* [Int] keys — the dominant shape for generated foreign keys —
         take an immediate-keyed table (constant-time hash and
         compare); everything else falls back to the generic one.
         Both draw group ids from the same counter, and the split
         mirrors polymorphic equality (an [Int] never equals a
         [Float] there), so grouping is unchanged. *)
      let int_ids : (int, int) Hashtbl.t =
        Hashtbl.create (max 16 (t.n_rows / 4))
      in
      let ids : (Value.t, int) Hashtbl.t = Hashtbl.create 16 in
      keys_out := Some (Scalar_keys (int_ids, ids));
      let row = ref 0 in
      while !n_live > 0 && !row < t.n_rows do
        let tup = rows.(!row) in
        (match tup.(pos) with
        | Value.Int x -> (
            match Hashtbl.find int_ids x with
            | g -> refine tup g
            | exception Not_found ->
                let g = !next in
                incr next;
                Hashtbl.add int_ids x g;
                seed tup g)
        | v ->
            if not (Value.is_null v) then (
              match Hashtbl.find ids v with
              | g -> refine tup g
              | exception Not_found ->
                  let g = !next in
                  incr next;
                  Hashtbl.add ids v g;
                  seed tup g));
        incr row
      done
  | poss ->
      let poss = Array.of_list poss in
      let ids : (Value.t list, int) Hashtbl.t =
        Hashtbl.create (max 16 (t.n_rows / 4))
      in
      keys_out := Some (Tuple_keys ids);
      let row = ref 0 in
      while !n_live > 0 && !row < t.n_rows do
        let tup = rows.(!row) in
        let null = ref false in
        let key = ref [] in
        for j = Array.length poss - 1 downto 0 do
          let v = tup.(poss.(j)) in
          if Value.is_null v then null := true else key := v :: !key
        done;
        (if not !null then
           match Hashtbl.find ids !key with
           | g -> refine tup g
           | exception Not_found ->
               let g = !next in
               incr next;
               Hashtbl.add ids !key g;
               seed tup g);
        incr row
      done);
  (match (retain, !keys_out) with
  | Some names, Some keys when !n_live > 0 ->
      (* survivors were live for the whole pass, so every group's
         representative is seeded for them; trim to the group count *)
      let reprs = Hashtbl.create (max 4 !n_live) in
      for j = 0 to !n_live - 1 do
        let k = live.(j) in
        Hashtbl.replace reprs names.(k) (ref (Array.sub repr.(k) 0 !next))
      done;
      Hashtbl.replace t.fd_sweeps lhs
        {
          sw_groups = !next;
          sw_keys = keys;
          sw_lhs_pos = Array.of_list (List.map (pos_of t) lhs);
          sw_reprs = reprs;
        }
  | _ -> ());
  verdict

(* The batched FD check: one LHS partition pass answers every RHS
   attribute by refinement sweeps, instead of [|rhs|] independent full
   scans. Nothing is dictionary-encoded on this path — every attribute
   is read exactly once per batch, so an encode pass would cost more
   than it saves; the LHS collapses to a dense group-id array and the
   RHS candidates are swept row-major over the raw values (fused into
   a single early-exiting pass when sequential, one sweep per worker
   under [pool]). Verdicts land by index, so the result order is the
   submission order whatever the domain count. Fresh verdicts are
   memoized only from the submitting domain (the verdict table is not
   thread-safe). *)
let fd_batch ?pool t ~lhs ~rhs =
  let rhs_arr = Array.of_list rhs in
  let n = Array.length rhs_arr in
  let cached = Array.map (fun a -> Hashtbl.find_opt t.fd_verdicts (lhs, [ a ])) rhs_arr in
  let misses = List.filter (fun i -> cached.(i) = None) (List.init n Fun.id) in
  let verdicts = Array.make n false in
  Array.iteri
    (fun i c -> match c with Some v -> verdicts.(i) <- v | None -> ())
    cached;
  (match misses with
  | [] -> ()
  | _ ->
      (* force the row-array cache on the submitting domain; workers
         only read it *)
      let rows = Table.rows t.table in
      let misses = Array.of_list misses in
      let positions = Array.map (fun i -> pos_of t rhs_arr.(i)) misses in
      let res =
        match pool with
        | Some pool when Domain_pool.size pool > 1 && Array.length misses > 1
          ->
            let gid, n_groups = lhs_gid t lhs in
            Domain_pool.map_array pool
              (fun pos -> sweep_one rows gid n_groups pos)
              positions
        | _ ->
            if Hashtbl.mem t.partitions lhs then
              let gid, n_groups = lhs_gid t lhs in
              sweep_all rows gid n_groups positions
            else
              let retain =
                if t.memoized then
                  Some (Array.map (fun i -> rhs_arr.(i)) misses)
                else None
              in
              sweep_fused ?retain t lhs rows positions
      in
      Array.iteri (fun k i -> verdicts.(i) <- res.(k)) misses;
      Array.iter
        (fun i ->
          let key = (lhs, [ rhs_arr.(i) ]) in
          if not (Hashtbl.mem t.fd_verdicts key) then
            Hashtbl.add t.fd_verdicts key verdicts.(i))
        misses);
  Array.to_list (Array.mapi (fun i a -> (a, verdicts.(i))) rhs_arr)

(* ------------------------------------------------------------------ *)
(* grouping (NULL as ordinary value, as FD-style callers need)         *)
(* ------------------------------------------------------------------ *)

let group_rows t attrs =
  let cols = columns t attrs in
  let width = Array.length cols in
  let grouped : (int list, int list) Hashtbl.t =
    Hashtbl.create (max 16 (t.n_rows / 4))
  in
  for row = 0 to t.n_rows - 1 do
    let key = ref [] in
    for j = width - 1 downto 0 do
      key := cols.(j).codes.(row) :: !key
    done;
    let prev = try Hashtbl.find grouped !key with Not_found -> [] in
    Hashtbl.replace grouped !key (row :: prev)
  done;
  let out = Hashtbl.create (max 16 (Hashtbl.length grouped)) in
  Hashtbl.iter
    (fun key members -> Hashtbl.add out (decode cols key) members)
    grouped;
  out

let stats t =
  {
    columns_encoded =
      Array.fold_left
        (fun acc c -> match c with Some _ -> acc + 1 | None -> acc)
        0 t.columns;
    distinct_sets = Hashtbl.length t.distinct_sets;
    partitions = Hashtbl.length t.partitions;
    fd_verdicts = Hashtbl.length t.fd_verdicts;
    join_counts = Hashtbl.length t.join_counts;
  }

(* ------------------------------------------------------------------ *)
(* incremental refresh (delta maintenance)                             *)
(* ------------------------------------------------------------------ *)

type refresh_outcome =
  | Store_fresh
  | Store_absorbed of int
  | Store_rebuilt

(* What an incremental refresh did to this store's distinct sets —
   the evidence coordinated join-count patching needs. *)
type refresh_summary =
  | Sum_unchanged
  | Sum_appended of (string list * Value.t list list) list
      (* per memoized attribute list, the keys newly added *)
  | Sum_invalidated

let intern_of t pos =
  match t.interns.(pos) with
  | Some h -> h
  | None ->
      (* Builder-made stores arrive without intern tables: rebuild one
         from the dictionary in O(|dict|). Dead entries (post-delete)
         intern back to their old code, which revives them exactly. *)
      let h = Hashtbl.create 256 in
      (match t.columns.(pos) with
      | Some c ->
          Array.iteri
            (fun code v -> if code > 0 then Hashtbl.replace h v code)
            c.dict
      | None -> ());
      t.interns.(pos) <- Some h;
      h

(* extend one encoded column with appended rows: intern each cell
   (extending the dictionary on first sight), append the codes *)
let extend_column t pos col tups =
  let k = Array.length tups in
  let n0 = Array.length col.codes in
  let codes = Array.make (n0 + k) 0 in
  Array.blit col.codes 0 codes 0 n0;
  let intern = intern_of t pos in
  let rev_new = ref [] in
  let next = ref (Array.length col.dict) in
  let nulls = ref col.nulls in
  Array.iteri
    (fun i tup ->
      let v = tup.(pos) in
      if Value.is_null v then incr nulls
      else
        match Hashtbl.find_opt intern v with
        | Some c -> codes.(n0 + i) <- c
        | None ->
            let c = !next in
            incr next;
            Hashtbl.add intern v c;
            rev_new := v :: !rev_new;
            codes.(n0 + i) <- c)
    tups;
  let dict =
    match !rev_new with
    | [] -> col.dict
    | l -> Array.append col.dict (Array.of_list (List.rev l))
  in
  { codes; dict; nulls = !nulls; exact_dict = col.exact_dict }

(* drop the deleted row positions from the codes (dictionary kept:
   entries may go dead, so the exact-dict invariant is lost) *)
let compact_column col idxs =
  let k = Array.length idxs in
  let n0 = Array.length col.codes in
  let codes = Array.make (n0 - k) 0 in
  let nulls = ref col.nulls in
  let j = ref 0 and d = ref 0 in
  for i = 0 to n0 - 1 do
    if !d < k && idxs.(!d) = i then begin
      if col.codes.(i) = 0 then decr nulls;
      incr d
    end
    else begin
      codes.(!j) <- col.codes.(i);
      incr j
    end
  done;
  { codes; dict = col.dict; nulls = !nulls; exact_dict = false }

(* NULL-free value projection, in attribute order *)
let project_opt (poss : int array) tup =
  let rec go j acc =
    if j < 0 then Some acc
    else
      let v = tup.(poss.(j)) in
      if Value.is_null v then None else go (j - 1) (v :: acc)
  in
  go (Array.length poss - 1) []

let repr_ensure r n =
  let len = Array.length !r in
  if n > len then begin
    let a = Array.make (max n (max 16 (2 * len))) Value.Null in
    Array.blit !r 0 a 0 len;
    r := a
  end

(* Advance one retained sweep state over appended rows: each row joins
   its LHS group (founding and seeding a fresh one on a new key) and is
   compared against every tracked attribute's representative; the
   returned table names the attributes that saw a disagreement. Key
   routing mirrors [sweep_fused] exactly (Int fast path, NULL-LHS rows
   exempt), so the advanced state is indistinguishable from a fresh
   full sweep over the extended extension. *)
let advance_sweep_state t st tups =
  let flipped : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let attrs =
    Hashtbl.fold (fun a r acc -> (a, pos_of t a, r) :: acc) st.sw_reprs []
  in
  let existing tup g =
    List.iter
      (fun (a, pos, r) ->
        let v = tup.(pos) in
        let rv = (!r).(g) in
        if not (rv == v || Value.equal rv v) then Hashtbl.replace flipped a ())
      attrs
  in
  let fresh tup g =
    List.iter
      (fun (_, pos, r) ->
        repr_ensure r (g + 1);
        (!r).(g) <- tup.(pos))
      attrs
  in
  let next () =
    let g = st.sw_groups in
    st.sw_groups <- g + 1;
    g
  in
  Array.iter
    (fun tup ->
      match st.sw_keys with
      | Scalar_keys (int_ids, ids) -> (
          match tup.(st.sw_lhs_pos.(0)) with
          | Value.Int x -> (
              match Hashtbl.find_opt int_ids x with
              | Some g -> existing tup g
              | None ->
                  let g = next () in
                  Hashtbl.add int_ids x g;
                  fresh tup g)
          | v ->
              if not (Value.is_null v) then (
                match Hashtbl.find_opt ids v with
                | Some g -> existing tup g
                | None ->
                    let g = next () in
                    Hashtbl.add ids v g;
                    fresh tup g))
      | Tuple_keys ids -> (
          match project_opt st.sw_lhs_pos tup with
          | None -> ()
          | Some key -> (
              match Hashtbl.find_opt ids key with
              | Some g -> existing tup g
              | None ->
                  let g = next () in
                  Hashtbl.add ids key g;
                  fresh tup g)))
    tups;
  flipped

(* The verdict short-circuits of the delta pass:
   - a FALSE verdict survives any append (extra rows cannot repair a
     violated FD); it is re-checked in O(delta) only if TRUE;
   - a TRUE verdict survives any delete (an FD holding on a superset
     holds on the subset); FALSE verdicts are dropped on delete.
   TRUE verdicts under appends are re-checked against the retained
   sweep state; those without one (pool sweeps, partition-path sweeps,
   [fd_holds]-path verdicts) are dropped and recomputed on demand. *)
let recheck_fd_verdicts t tups =
  let flips : (string list, (string, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  Hashtbl.iter
    (fun lhs st -> Hashtbl.replace flips lhs (advance_sweep_state t st tups))
    t.fd_sweeps;
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.fd_verdicts [] in
  List.iter
    (fun (((lhs, rhs) as key), v) ->
      if v then
        match Hashtbl.find_opt t.fd_sweeps lhs with
        | None -> Hashtbl.remove t.fd_verdicts key
        | Some st ->
            if List.for_all (fun a -> Hashtbl.mem st.sw_reprs a) rhs then begin
              let fl = Hashtbl.find flips lhs in
              if List.exists (fun a -> Hashtbl.mem fl a) rhs then
                Hashtbl.replace t.fd_verdicts key false
            end
            else Hashtbl.remove t.fd_verdicts key)
    entries

(* patch every memoized distinct set and witness count with the
   appended rows; per attribute list, the newly-added keys feed the
   coordinated join-count patch *)
let patch_distinct_append t tups =
  let sets =
    Hashtbl.fold (fun attrs set acc -> (attrs, set) :: acc) t.distinct_sets []
  in
  List.map
    (fun (attrs, set) ->
      let poss = Array.of_list (List.map (pos_of t) attrs) in
      let added = ref [] in
      let fresh_witnesses = ref 0 in
      Array.iter
        (fun tup ->
          match project_opt poss tup with
          | None -> ()
          | Some key ->
              incr fresh_witnesses;
              if not (Hashtbl.mem set key) then begin
                Hashtbl.add set key ();
                added := key :: !added
              end)
        tups;
      (match Hashtbl.find_opt t.witnesses attrs with
      | Some w -> Hashtbl.replace t.witnesses attrs (w + !fresh_witnesses)
      | None -> ());
      (attrs, !added))
    sets

let apply_delta t ~summary delta =
  match delta with
  | Table.Rows_appended tups ->
      Array.iteri
        (fun pos c ->
          match c with
          | Some col -> t.columns.(pos) <- Some (extend_column t pos col tups)
          | None -> ())
        t.columns;
      let added = patch_distinct_append t tups in
      recheck_fd_verdicts t tups;
      (* stripped partitions are not patched in place: group membership
         arrays would need per-key indexes kept alive; they rebuild
         lazily on next demand instead *)
      Hashtbl.reset t.partitions;
      t.n_rows <- t.n_rows + Array.length tups;
      (match !summary with
      | `Appended acc -> summary := `Appended (added :: acc)
      | `Invalidated -> ())
  | Table.Rows_deleted (idxs, _removed) ->
      Array.iteri
        (fun pos c ->
          match c with
          | Some col -> t.columns.(pos) <- Some (compact_column col idxs)
          | None -> ())
        t.columns;
      (* value-derived memos are dropped wholesale; only verdicts a
         deletion provably cannot flip survive *)
      Hashtbl.reset t.distinct_sets;
      Hashtbl.reset t.witnesses;
      Hashtbl.reset t.partitions;
      Hashtbl.reset t.fd_sweeps;
      let entries =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.fd_verdicts []
      in
      List.iter
        (fun (k, v) -> if not v then Hashtbl.remove t.fd_verdicts k)
        entries;
      t.n_rows <- t.n_rows - Array.length idxs;
      summary := `Invalidated

let delta_size = function
  | Table.Rows_appended tups -> Array.length tups
  | Table.Rows_deleted (idxs, _) -> Array.length idxs

let total_delta_rows ds = List.fold_left (fun acc d -> acc + delta_size d) 0 ds

let rebuild_in_place t table =
  t.table <- table;
  t.uid <- Atomic.fetch_and_add uid_counter 1;
  t.built_version <- Table.version table;
  t.n_rows <- Table.cardinality table;
  Array.fill t.columns 0 (Array.length t.columns) None;
  Array.fill t.interns 0 (Array.length t.interns) None;
  Hashtbl.reset t.distinct_sets;
  Hashtbl.reset t.witnesses;
  Hashtbl.reset t.partitions;
  Hashtbl.reset t.fd_verdicts;
  Hashtbl.reset t.fd_sweeps;
  Hashtbl.reset t.join_counts;
  Atomic.incr rebuild_ctr

(* Refresh a stale store in place by replaying the table's mutation
   log — incrementally when the delta stays within [delta_fraction] of
   the extension (and the log can still replay), by full rebuild
   otherwise. [coordinated] callers ([refresh_all]) patch cross-store
   join memos themselves from the returned summary; the uncoordinated
   path drops this store's own join memos. Either way a changed store
   renews its uid, so a foreign memo keyed on the old identity can
   never be served stale. *)
let refresh_in_place ?(delta_fraction = default_delta_fraction) ~coordinated t
    table =
  let version = Table.version table in
  if t.built_version = version then begin
    t.table <- table;
    (Store_fresh, Sum_unchanged)
  end
  else begin
    let deltas = Table.deltas_since table t.built_version in
    let budget =
      delta_fraction
      *. float_of_int (max 1 (max t.n_rows (Table.cardinality table)))
    in
    match deltas with
    | Some ds when float_of_int (total_delta_rows ds) <= budget ->
        let n = total_delta_rows ds in
        let summary = ref (`Appended []) in
        List.iter (fun d -> apply_delta t ~summary d) ds;
        t.table <- table;
        t.built_version <- version;
        t.uid <- Atomic.fetch_and_add uid_counter 1;
        if not coordinated then Hashtbl.reset t.join_counts;
        Atomic.incr incremental_ctr;
        ignore (Atomic.fetch_and_add absorbed_ctr n);
        let sum =
          match !summary with
          | `Invalidated -> Sum_invalidated
          | `Appended batches ->
              let merged : (string list, Value.t list list ref) Hashtbl.t =
                Hashtbl.create 8
              in
              List.iter
                (List.iter (fun (attrs, keys) ->
                     match Hashtbl.find_opt merged attrs with
                     | Some cell -> cell := keys @ !cell
                     | None -> Hashtbl.add merged attrs (ref keys)))
                batches;
              Sum_appended
                (Hashtbl.fold (fun attrs cell acc -> (attrs, !cell) :: acc)
                   merged [])
        in
        (Store_absorbed n, sum)
    | _ ->
        rebuild_in_place t table;
        (Store_rebuilt, Sum_invalidated)
  end

(* the memoized store: stashed in the table's extension-cache slot. A
   stale store refreshes itself in place before it is returned, so a
   retrieved store is never stale — the structural invalidation the
   ext-clear used to provide, now at delta cost instead of full loss. *)
let of_table ?delta_fraction table =
  match Table.ext_cache table with
  | Some (Store s) ->
      if s.built_version <> Table.version table then
        ignore (refresh_in_place ?delta_fraction ~coordinated:false s table)
      else s.table <- table;
      s
  | _ ->
      let s = make_store ~memoized:true table in
      Table.set_ext_cache table (Store s);
      s

let refresh ?delta_fraction table =
  match Table.ext_cache table with
  | Some (Store s) ->
      Some (fst (refresh_in_place ?delta_fraction ~coordinated:false s table))
  | _ -> None

let refresh_all ?delta_fraction tables =
  (* pass 1: refresh every stashed store, remembering its old uid *)
  let items =
    List.map
      (fun tbl ->
        match Table.ext_cache tbl with
        | Some (Store s) ->
            let old_uid = s.uid in
            let outcome, summary =
              refresh_in_place ?delta_fraction ~coordinated:true s tbl
            in
            Some (s, old_uid, outcome, summary)
        | _ -> None)
      tables
  in
  (* pass 2: patch every join memo across the refreshed stores. A memo
     keys (attrs1, peer uid, attrs2); the peer's old uid finds its
     refreshed store, the patched count is rekeyed under the peer's
     renewed uid. The exact delta is |A1 ∩ d2| + |{k ∈ A2 : k ∈ d1 and
     k ∉ A1}| where A_i are the newly-added keys and d_i the patched
     distinct sets. Entries touching a store outside this set, or a
     side whose summary was invalidated, are dropped and recomputed on
     demand from the patched distinct sets. *)
  let registry = Hashtbl.create 16 in
  List.iter
    (function
      | Some (s, old_uid, _, summary) ->
          Hashtbl.replace registry old_uid (s, summary)
      | None -> ())
    items;
  let added_of summary attrs =
    match summary with
    | Sum_unchanged -> Some []
    | Sum_appended l -> List.assoc_opt attrs l
    | Sum_invalidated -> None
  in
  List.iter
    (function
      | None -> ()
      | Some (s, _, _, sum1) ->
          let entries =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.join_counts []
          in
          Hashtbl.reset s.join_counts;
          List.iter
            (fun ((a1, peer_uid, a2), n) ->
              match Hashtbl.find_opt registry peer_uid with
              | None -> ()  (* peer outside the refreshed set: drop *)
              | Some (p, sum2) -> (
                  match (added_of sum1 a1, added_of sum2 a2) with
                  | Some added1, Some added2 -> (
                      match
                        ( Hashtbl.find_opt s.distinct_sets a1,
                          Hashtbl.find_opt p.distinct_sets a2 )
                      with
                      | Some d1, Some d2 ->
                          let a1set =
                            Hashtbl.create (max 4 (List.length added1))
                          in
                          List.iter
                            (fun k -> Hashtbl.replace a1set k ())
                            added1;
                          let extra = ref 0 in
                          List.iter
                            (fun k -> if Hashtbl.mem d2 k then incr extra)
                            added1;
                          List.iter
                            (fun k ->
                              if Hashtbl.mem d1 k && not (Hashtbl.mem a1set k)
                              then incr extra)
                            added2;
                          Hashtbl.replace s.join_counts (a1, p.uid, a2)
                            (n + !extra)
                      | _ -> ())
                  | _ -> ()))
            entries)
    items;
  List.map
    (function None -> None | Some (_, _, outcome, _) -> Some outcome)
    items

(* ------------------------------------------------------------------ *)
(* streaming builder                                                   *)
(* ------------------------------------------------------------------ *)

module Builder = struct
  type vec = { mutable data : int array; mutable len : int }

  let vec_create () = { data = Array.make 256 0; len = 0 }

  let vec_push v x =
    if v.len = Array.length v.data then begin
      let d = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 d 0 v.len;
      v.data <- d
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  (* Flat open-addressing intern table. Same key semantics as the
     polymorphic hashtable [encode] uses — [compare _ _ = 0] for
     identity — so a finished builder's dictionaries are
     indistinguishable from a post-hoc encode of the same rows; but
     probing flat arrays allocates nothing per lookup, which matters
     when every cell of a bulk load passes through.

     [Value.Int] keys (the shape of key-like columns, where nearly
     every cell misses) get their own unboxed side table: no box to
     hash or chase on a probe. Cross-constructor values never compare
     equal, so partitioning by constructor cannot change identity. *)
  type vtab = {
    mutable v_cap : int;  (* power of two *)
    mutable v_size : int;
    mutable v_hs : int array;  (* 0 = empty slot, else [hash lor 1] *)
    mutable v_keys : Value.t array;
    mutable v_codes : int array;
    mutable n_cap : int;  (* the Value.Int side, unboxed *)
    mutable n_size : int;
    mutable n_tab : int array;  (* interleaved [key; code] pairs *)
  }

  (* the int side keys slots directly by value; [min_int] marks an
     empty slot (Int min_int itself goes through the boxed side) *)
  let ntab_make cap = Array.init (2 * cap) (fun j -> if j land 1 = 0 then min_int else 0)

  let vtab_create () =
    {
      v_cap = 256;
      v_size = 0;
      v_hs = Array.make 256 0;
      v_keys = Array.make 256 Value.Null;
      v_codes = Array.make 256 0;
      n_cap = 256;
      n_size = 0;
      n_tab = ntab_make 256;
    }

  (* Placement only, never identity. Low bits pass through so runs of
     sequential keys occupy sequential slots (cache-friendly inserts and
     rehashes); high bits are folded in so huge keys still spread. *)
  let int_hash n = (n lxor (n lsr 32)) land max_int

  let ntab_slot t n =
    let mask = t.n_cap - 1 in
    let i = ref (int_hash n land mask) in
    while
      let k = Array.unsafe_get t.n_tab (2 * !i) in
      k <> min_int && k <> n
    do
      i := (!i + 1) land mask
    done;
    !i

  let ntab_grow t =
    let old = t.n_tab and old_cap = t.n_cap in
    let cap = t.n_cap * 2 in
    t.n_cap <- cap;
    t.n_tab <- ntab_make cap;
    let mask = cap - 1 in
    for j = 0 to old_cap - 1 do
      let k = old.(2 * j) in
      if k <> min_int then begin
        let i = ref (int_hash k land mask) in
        while t.n_tab.(2 * !i) <> min_int do
          i := (!i + 1) land mask
        done;
        t.n_tab.(2 * !i) <- k;
        t.n_tab.((2 * !i) + 1) <- old.((2 * j) + 1)
      end
    done

  (* indices are masked to the (power-of-two) capacity, so the
     unchecked reads cannot go out of bounds *)
  let vtab_slot t h v =
    let mask = t.v_cap - 1 in
    let i = ref (h land mask) in
    while
      let h' = Array.unsafe_get t.v_hs !i in
      h' <> 0
      && not (h' = h && Stdlib.compare (Array.unsafe_get t.v_keys !i) v = 0)
    do
      i := (!i + 1) land mask
    done;
    !i

  (* quadruple once the table is clearly high-cardinality: rehashing is
     the dominant interning cost for key-like columns, and fewer, larger
     steps move each entry O(1) times instead of O(log n) *)
  let vtab_grow t =
    let old_hs = t.v_hs and old_keys = t.v_keys and old_codes = t.v_codes in
    let cap = t.v_cap * if t.v_cap >= 65536 then 4 else 2 in
    t.v_cap <- cap;
    t.v_hs <- Array.make cap 0;
    t.v_keys <- Array.make cap Value.Null;
    t.v_codes <- Array.make cap 0;
    let mask = cap - 1 in
    Array.iteri
      (fun j h ->
        if h <> 0 then begin
          let i = ref (h land mask) in
          while t.v_hs.(!i) <> 0 do
            i := (!i + 1) land mask
          done;
          t.v_hs.(!i) <- h;
          t.v_keys.(!i) <- old_keys.(j);
          t.v_codes.(!i) <- old_codes.(j)
        end)
      old_hs

  (* growable dictionary in code order; slot 0 is the NULL code *)
  type dvec = { mutable ddata : Value.t array; mutable dlen : int }

  let dvec_create () = { ddata = Array.make 256 Value.Null; dlen = 1 }

  let dvec_push d v =
    if d.dlen = Array.length d.ddata then begin
      let a = Array.make (2 * d.dlen) Value.Null in
      Array.blit d.ddata 0 a 0 d.dlen;
      d.ddata <- a
    end;
    d.ddata.(d.dlen) <- v;
    d.dlen <- d.dlen + 1

  type b = {
    b_rel : Relation.t;
    b_arity : int;
    b_codes : vec array;  (* per attribute position, row-aligned *)
    b_intern : vtab array;
    b_dict : dvec array;  (* per column, indexed by code *)
    b_next : int array;  (* next free code per column *)
    b_nulls : int array;
    mutable b_rows : int;
  }

  type t = b

  let create rel =
    let arity = Relation.arity rel in
    {
      b_rel = rel;
      b_arity = arity;
      b_codes = Array.init arity (fun _ -> vec_create ());
      b_intern = Array.init arity (fun _ -> vtab_create ());
      b_dict = Array.init arity (fun _ -> dvec_create ());
      b_next = Array.make arity 1;
      b_nulls = Array.make arity 0;
      b_rows = 0;
    }

  let rows b = b.b_rows

  let intern b pos v =
    match v with
    | Value.Null -> 0
    | Value.Int n when n <> min_int ->
        let t = b.b_intern.(pos) in
        let i = ntab_slot t n in
        if t.n_tab.(2 * i) <> min_int then t.n_tab.((2 * i) + 1)
        else begin
          let c = b.b_next.(pos) in
          b.b_next.(pos) <- c + 1;
          let i =
            if (t.n_size + 1) * 2 > t.n_cap then begin
              ntab_grow t;
              ntab_slot t n
            end
            else i
          in
          t.n_tab.(2 * i) <- n;
          t.n_tab.((2 * i) + 1) <- c;
          t.n_size <- t.n_size + 1;
          dvec_push b.b_dict.(pos) v;
          c
        end
    | _ ->
        let t = b.b_intern.(pos) in
        let h = Hashtbl.hash v lor 1 in
        let i = vtab_slot t h v in
        if t.v_hs.(i) <> 0 then t.v_codes.(i)
        else begin
          let c = b.b_next.(pos) in
          b.b_next.(pos) <- c + 1;
          let i =
            if (t.v_size + 1) * 2 > t.v_cap then begin
              vtab_grow t;
              vtab_slot t h v
            end
            else i
          in
          t.v_hs.(i) <- h;
          t.v_keys.(i) <- v;
          t.v_codes.(i) <- c;
          t.v_size <- t.v_size + 1;
          dvec_push b.b_dict.(pos) v;
          c
        end

  let append b codes =
    if Array.length codes <> b.b_arity then
      invalid_arg "Column_store.Builder.append: arity mismatch";
    for p = 0 to b.b_arity - 1 do
      let c = codes.(p) in
      vec_push b.b_codes.(p) c;
      if c = 0 then b.b_nulls.(p) <- b.b_nulls.(p) + 1
    done;
    b.b_rows <- b.b_rows + 1

  (* Merge [src] (a chunk-local builder) onto the end of [dst].
     Appending chunk dictionaries in chunk order reproduces the global
     first-occurrence interning order, so the merged store is identical
     to a sequential build over the concatenated rows. *)
  let merge dst src =
    if dst.b_arity <> src.b_arity then
      invalid_arg "Column_store.Builder.merge: arity mismatch";
    for p = 0 to dst.b_arity - 1 do
      let local = src.b_dict.(p) in
      let remap = Array.make local.dlen 0 in
      for c = 1 to local.dlen - 1 do
        remap.(c) <- intern dst p local.ddata.(c)
      done;
      let sv = src.b_codes.(p) in
      let dv = dst.b_codes.(p) in
      for i = 0 to sv.len - 1 do
        vec_push dv remap.(sv.data.(i))
      done;
      dst.b_nulls.(p) <- dst.b_nulls.(p) + src.b_nulls.(p)
    done;
    dst.b_rows <- dst.b_rows + src.b_rows

  let finish b =
    let cols =
      Array.init b.b_arity (fun p ->
          {
            codes = Array.sub b.b_codes.(p).data 0 b.b_codes.(p).len;
            dict = Array.sub b.b_dict.(p).ddata 0 b.b_dict.(p).dlen;
            nulls = b.b_nulls.(p);
            exact_dict = true;
          })
    in
    let n = b.b_rows in
    let produce () =
      Array.init n (fun i ->
          Array.map (fun (c : column) -> c.dict.(c.codes.(i))) cols)
    in
    let table = Table.create_deferred b.b_rel ~size:n produce in
    let store = make_store ~memoized:true table in
    Array.iteri (fun p c -> store.columns.(p) <- Some c) cols;
    Table.set_ext_cache table (Store store);
    table
end
