type ext = ..

(* Backing storage: either the classic reversed insertion list, or a
   thunk that produces the whole row array on first demand (columnar
   loads keep tuples virtual until someone actually asks for rows). *)
type source = Rows of Tuple.t list | Deferred of (unit -> Tuple.t array)

type delta =
  | Rows_appended of Tuple.t array
  | Rows_deleted of int array * Tuple.t array

type t = {
  schema : Relation.t;
  mutable source : source;
  mutable size : int;
  mutable cache : Tuple.t array option;
  mutable version : int;
  mutable ext : ext option;
  (* the mutation log: one entry per version bump, newest first, each
     stamped with the version it produced. [log_base] is the oldest
     version replay can start from — entries older than it have been
     trimmed. *)
  mutable log : (int * delta) list;
  mutable log_rows : int;  (* total tuples across logged entries *)
  mutable log_base : int;
}

let create schema =
  { schema; source = Rows []; size = 0; cache = None; version = 0; ext = None;
    log = []; log_rows = 0; log_base = 0 }

let create_deferred schema ~size produce =
  if size < 0 then invalid_arg "Table.create_deferred: negative size";
  { schema; source = Deferred produce; size; cache = None; version = 0;
    ext = None; log = []; log_rows = 0; log_base = 0 }

let schema t = t.schema
let cardinality t = t.size
let version t = t.version
let ext_cache t = t.ext
let set_ext_cache t e = t.ext <- Some e
let clear_ext_cache t = t.ext <- None

(* ------------------------------------------------------------------ *)
(* mutation log                                                        *)
(* ------------------------------------------------------------------ *)

let delta_rows = function
  | Rows_appended tups -> Array.length tups
  | Rows_deleted (idxs, _) -> Array.length idxs

(* Trimming bounds the log's memory at roughly one extra copy of the
   extension: once the logged tuples exceed max(cardinality, 1024),
   oldest entries are dropped (replaying from before them becomes
   impossible and consumers fall back to a rebuild, which a delta that
   large would trigger anyway). *)
let log_push t d =
  t.log <- (t.version, d) :: t.log;
  t.log_rows <- t.log_rows + delta_rows d;
  let cap = max t.size 1024 in
  if t.log_rows > cap then begin
    (* walk newest-to-oldest, keeping entries while under the cap (at
       least one); [log_base] becomes the version of the newest
       dropped entry *)
    let rec keep rows = function
      | [] -> []
      | (v, d) :: rest ->
          let r = delta_rows d in
          if rows > 0 && rows + r > cap then begin
            t.log_base <- v;
            t.log_rows <- rows;
            []
          end
          else (v, d) :: keep (rows + r) rest
    in
    t.log <- keep 0 t.log
  end

let deltas_since t v =
  if v = t.version then Some []
  else if v < t.log_base || v > t.version then None
  else begin
    (* entries carry consecutive versions log_base+1 .. version, newest
       first; collecting while newer than [v] yields oldest-first *)
    let rec collect acc = function
      | (ver, d) :: rest when ver > v -> collect (d :: acc) rest
      | _ -> acc
    in
    Some (collect [] t.log)
  end

let materialized t =
  t.cache <> None
  || (match t.source with Rows _ -> true | Deferred _ -> false)

let rows t =
  match t.cache with
  | Some a -> a
  | None -> (
      match t.source with
      | Rows rev ->
          let a = Array.make t.size [||] in
          let rec fill i = function
            | [] -> ()
            | r :: rest ->
                a.(i) <- r;
                fill (i - 1) rest
          in
          fill (t.size - 1) rev;
          t.cache <- Some a;
          a
      | Deferred produce ->
          let a = produce () in
          if Array.length a <> t.size then
            invalid_arg
              (Printf.sprintf
                 "Table(%s): deferred backing produced %d rows, expected %d"
                 t.schema.Relation.name (Array.length a) t.size);
          t.cache <- Some a;
          a)

let check_arity t tup =
  if Array.length tup <> Relation.arity t.schema then
    invalid_arg
      (Printf.sprintf "Table.insert(%s): arity mismatch (%d, expected %d)"
         t.schema.Relation.name (Array.length tup)
         (Relation.arity t.schema))

(* the reversed backing list, materializing a deferred table (which
   becomes list-backed on its first mutation) *)
let backing_rev t =
  match t.source with
  | Rows rev -> rev
  | Deferred _ -> Array.fold_left (fun acc r -> r :: acc) [] (rows t)

let insert_tuple t tup =
  check_arity t tup;
  let prev = backing_rev t in
  t.source <- Rows (tup :: prev);
  t.size <- t.size + 1;
  t.cache <- None;
  t.version <- t.version + 1;
  log_push t (Rows_appended [| tup |])

let insert t values = insert_tuple t (Tuple.of_list values)

(* One transactional append: every arity is validated before anything
   is touched, and the whole batch lands under a single version bump
   and a single delta-log entry. *)
let insert_many t values =
  match values with
  | [] -> ()
  | _ ->
      let tups = Array.of_list (List.map Tuple.of_list values) in
      Array.iter (check_arity t) tups;
      let prev = ref (backing_rev t) in
      Array.iter (fun tup -> prev := tup :: !prev) tups;
      t.source <- Rows !prev;
      t.size <- t.size + Array.length tups;
      t.cache <- None;
      t.version <- t.version + 1;
      log_push t (Rows_appended tups)

let delete_rows t idxs =
  match idxs with
  | [] -> ()
  | _ ->
      let n = t.size in
      List.iter
        (fun i ->
          if i < 0 || i >= n then
            invalid_arg
              (Printf.sprintf
                 "Table.delete_rows(%s): index %d out of bounds (size %d)"
                 t.schema.Relation.name i n))
        idxs;
      let idxs = Array.of_list (List.sort_uniq Int.compare idxs) in
      let all = rows t in
      let removed = Array.map (fun i -> all.(i)) idxs in
      let k = Array.length idxs in
      let kept = Array.make (n - k) [||] in
      let j = ref 0 and d = ref 0 in
      for i = 0 to n - 1 do
        if !d < k && idxs.(!d) = i then incr d
        else begin
          kept.(!j) <- all.(i);
          incr j
        end
      done;
      t.source <- Deferred (fun () -> kept);
      t.cache <- Some kept;
      t.size <- n - k;
      t.version <- t.version + 1;
      log_push t (Rows_deleted (idxs, removed))

let with_schema t schema =
  if schema.Relation.attrs <> t.schema.Relation.attrs then
    invalid_arg
      (Printf.sprintf "Table.with_schema(%s): attribute lists differ"
         t.schema.Relation.name);
  { t with schema }

let to_lists t = Array.to_list (Array.map Tuple.to_list (rows t))

let positions t attrs =
  let pos a =
    try Relation.attr_index t.schema a
    with Not_found ->
      invalid_arg
        (Printf.sprintf "Table(%s): unknown attribute %s"
           t.schema.Relation.name a)
  in
  Array.of_list (List.map pos attrs)

let value t tup a = tup.(Relation.attr_index t.schema a)

let distinct_table t attrs =
  let idx = positions t attrs in
  let seen = Hashtbl.create (max 16 (cardinality t)) in
  Array.iter
    (fun tup ->
      if not (Tuple.has_null_at idx tup) then
        let key = Tuple.project_list idx tup in
        if not (Hashtbl.mem seen key) then Hashtbl.add seen key ())
    (rows t);
  seen

let project_distinct t attrs =
  let seen = distinct_table t attrs in
  Hashtbl.fold (fun k () acc -> k :: acc) seen []

let count_distinct t attrs = Hashtbl.length (distinct_table t attrs)

let equijoin_distinct_count t1 a1 t2 a2 =
  if List.length a1 <> List.length a2 then
    invalid_arg "Table.equijoin_distinct_count: width mismatch";
  (* iterate over the smaller distinct set, probe the larger *)
  let d1 = distinct_table t1 a1 and d2 = distinct_table t2 a2 in
  let small, large =
    if Hashtbl.length d1 <= Hashtbl.length d2 then (d1, d2) else (d2, d1)
  in
  Hashtbl.fold
    (fun k () acc -> if Hashtbl.mem large k then acc + 1 else acc)
    small 0

let group_rows t attrs =
  let idx = positions t attrs in
  let groups = Hashtbl.create (max 16 (cardinality t)) in
  Array.iteri
    (fun i tup ->
      let key = Tuple.project_list idx tup in
      let prev = try Hashtbl.find groups key with Not_found -> [] in
      Hashtbl.replace groups key (i :: prev))
    (rows t);
  groups

let select t pred =
  Array.fold_right (fun tup acc -> if pred tup then tup :: acc else acc)
    (rows t) []

let check_unique t attrs =
  let idx = positions t attrs in
  let seen = Hashtbl.create (max 16 (cardinality t)) in
  let ok = ref true in
  Array.iter
    (fun tup ->
      if !ok && not (Tuple.has_null_at idx tup) then begin
        let key = Tuple.project_list idx tup in
        if Hashtbl.mem seen key then ok := false
        else Hashtbl.add seen key ()
      end)
    (rows t);
  !ok

let check_not_null t attr =
  let i = Relation.attr_index t.schema attr in
  Array.for_all (fun tup -> not (Value.is_null tup.(i))) (rows t)

let check_constraints t =
  let name = t.schema.Relation.name in
  let errors = ref [] in
  List.iter
    (fun u ->
      if not (check_unique t u) then
        errors :=
          Printf.sprintf "%s: unique(%s) violated" name
            (Attribute.Names.to_string u)
          :: !errors)
    t.schema.Relation.uniques;
  List.iter
    (fun a ->
      if not (check_not_null t a) then
        errors := Printf.sprintf "%s: not null(%s) violated" name a :: !errors)
    (Relation.not_null_attrs t.schema);
  match !errors with [] -> Ok () | errs -> Error (List.rev errs)

let pp ?(max_rows = 20) ppf t =
  Format.fprintf ppf "@[<v>%a@ " Relation.pp t.schema;
  let all = rows t in
  let n = Array.length all in
  let shown = min n max_rows in
  for i = 0 to shown - 1 do
    Format.fprintf ppf "%a@ " Tuple.pp all.(i)
  done;
  if n > shown then Format.fprintf ppf "... (%d more rows)@ " (n - shown);
  Format.fprintf ppf "@]"
