type ext = ..

(* Backing storage: either the classic reversed insertion list, or a
   thunk that produces the whole row array on first demand (columnar
   loads keep tuples virtual until someone actually asks for rows). *)
type source = Rows of Tuple.t list | Deferred of (unit -> Tuple.t array)

type t = {
  schema : Relation.t;
  mutable source : source;
  mutable size : int;
  mutable cache : Tuple.t array option;
  mutable version : int;
  mutable ext : ext option;
}

let create schema =
  { schema; source = Rows []; size = 0; cache = None; version = 0; ext = None }

let create_deferred schema ~size produce =
  if size < 0 then invalid_arg "Table.create_deferred: negative size";
  { schema; source = Deferred produce; size; cache = None; version = 0;
    ext = None }

let schema t = t.schema
let cardinality t = t.size
let version t = t.version
let ext_cache t = t.ext
let set_ext_cache t e = t.ext <- Some e

let materialized t =
  t.cache <> None
  || (match t.source with Rows _ -> true | Deferred _ -> false)

let rows t =
  match t.cache with
  | Some a -> a
  | None -> (
      match t.source with
      | Rows rev ->
          let a = Array.make t.size [||] in
          let rec fill i = function
            | [] -> ()
            | r :: rest ->
                a.(i) <- r;
                fill (i - 1) rest
          in
          fill (t.size - 1) rev;
          t.cache <- Some a;
          a
      | Deferred produce ->
          let a = produce () in
          if Array.length a <> t.size then
            invalid_arg
              (Printf.sprintf
                 "Table(%s): deferred backing produced %d rows, expected %d"
                 t.schema.Relation.name (Array.length a) t.size);
          t.cache <- Some a;
          a)

let insert_tuple t tup =
  if Array.length tup <> Relation.arity t.schema then
    invalid_arg
      (Printf.sprintf "Table.insert(%s): arity mismatch (%d, expected %d)"
         t.schema.Relation.name (Array.length tup)
         (Relation.arity t.schema));
  let prev =
    match t.source with
    | Rows rev -> rev
    | Deferred _ ->
        (* a deferred table becomes list-backed on its first insert *)
        Array.fold_left (fun acc r -> r :: acc) [] (rows t)
  in
  t.source <- Rows (tup :: prev);
  t.size <- t.size + 1;
  t.cache <- None;
  t.version <- t.version + 1;
  t.ext <- None

let insert t values = insert_tuple t (Tuple.of_list values)
let insert_many t rows = List.iter (insert t) rows

let with_schema t schema =
  if schema.Relation.attrs <> t.schema.Relation.attrs then
    invalid_arg
      (Printf.sprintf "Table.with_schema(%s): attribute lists differ"
         t.schema.Relation.name);
  { t with schema }

let to_lists t = Array.to_list (Array.map Tuple.to_list (rows t))

let positions t attrs =
  let pos a =
    try Relation.attr_index t.schema a
    with Not_found ->
      invalid_arg
        (Printf.sprintf "Table(%s): unknown attribute %s"
           t.schema.Relation.name a)
  in
  Array.of_list (List.map pos attrs)

let value t tup a = tup.(Relation.attr_index t.schema a)

let distinct_table t attrs =
  let idx = positions t attrs in
  let seen = Hashtbl.create (max 16 (cardinality t)) in
  Array.iter
    (fun tup ->
      if not (Tuple.has_null_at idx tup) then
        let key = Tuple.project_list idx tup in
        if not (Hashtbl.mem seen key) then Hashtbl.add seen key ())
    (rows t);
  seen

let project_distinct t attrs =
  let seen = distinct_table t attrs in
  Hashtbl.fold (fun k () acc -> k :: acc) seen []

let count_distinct t attrs = Hashtbl.length (distinct_table t attrs)

let equijoin_distinct_count t1 a1 t2 a2 =
  if List.length a1 <> List.length a2 then
    invalid_arg "Table.equijoin_distinct_count: width mismatch";
  (* iterate over the smaller distinct set, probe the larger *)
  let d1 = distinct_table t1 a1 and d2 = distinct_table t2 a2 in
  let small, large =
    if Hashtbl.length d1 <= Hashtbl.length d2 then (d1, d2) else (d2, d1)
  in
  Hashtbl.fold
    (fun k () acc -> if Hashtbl.mem large k then acc + 1 else acc)
    small 0

let group_rows t attrs =
  let idx = positions t attrs in
  let groups = Hashtbl.create (max 16 (cardinality t)) in
  Array.iteri
    (fun i tup ->
      let key = Tuple.project_list idx tup in
      let prev = try Hashtbl.find groups key with Not_found -> [] in
      Hashtbl.replace groups key (i :: prev))
    (rows t);
  groups

let select t pred =
  Array.fold_right (fun tup acc -> if pred tup then tup :: acc else acc)
    (rows t) []

let check_unique t attrs =
  let idx = positions t attrs in
  let seen = Hashtbl.create (max 16 (cardinality t)) in
  let ok = ref true in
  Array.iter
    (fun tup ->
      if !ok && not (Tuple.has_null_at idx tup) then begin
        let key = Tuple.project_list idx tup in
        if Hashtbl.mem seen key then ok := false
        else Hashtbl.add seen key ()
      end)
    (rows t);
  !ok

let check_not_null t attr =
  let i = Relation.attr_index t.schema attr in
  Array.for_all (fun tup -> not (Value.is_null tup.(i))) (rows t)

let check_constraints t =
  let name = t.schema.Relation.name in
  let errors = ref [] in
  List.iter
    (fun u ->
      if not (check_unique t u) then
        errors :=
          Printf.sprintf "%s: unique(%s) violated" name
            (Attribute.Names.to_string u)
          :: !errors)
    t.schema.Relation.uniques;
  List.iter
    (fun a ->
      if not (check_not_null t a) then
        errors := Printf.sprintf "%s: not null(%s) violated" name a :: !errors)
    (Relation.not_null_attrs t.schema);
  match !errors with [] -> Ok () | errs -> Error (List.rev errs)

let pp ?(max_rows = 20) ppf t =
  Format.fprintf ppf "@[<v>%a@ " Relation.pp t.schema;
  let all = rows t in
  let n = Array.length all in
  let shown = min n max_rows in
  for i = 0 to shown - 1 do
    Format.fprintf ppf "%a@ " Tuple.pp all.(i)
  done;
  if n > shown then Format.fprintf ppf "... (%d more rows)@ " (n - shown);
  Format.fprintf ppf "@]"
