type check = Naive | Partition | Columnar
type cache_policy = Cache_off | Cache_shared
type parallelism = Sequential | Domains of int

type budget = {
  deadline_s : float option;
  max_heap_words : int option;
  on_exhausted : [ `Partial | `Fail ];
}

type t = {
  check : check;
  cache : cache_policy;
  parallelism : parallelism;
  budget : budget;
  delta_fraction : float;
}

let no_budget = { deadline_s = None; max_heap_words = None; on_exhausted = `Partial }

let make ?(check = Columnar) ?(cache = Cache_shared)
    ?(parallelism = Sequential) ?deadline_s ?max_heap_words
    ?(on_exhausted = `Partial)
    ?(delta_fraction = Column_store.default_delta_fraction) ?spill_dir
    ?resident_budget_words ?segment_rows ?zone_pruning () =
  (* out-of-core parameters configure the process-wide Ooc policy (the
     thing being budgeted — the heap — is process-wide); the engine
     record itself stays pure data so job specs round-trip unchanged *)
  if
    spill_dir <> None || resident_budget_words <> None || segment_rows <> None
    || zone_pruning <> None
  then Ooc.configure ?spill_dir ?resident_budget_words ?segment_rows ?zone_pruning ();
  { check; cache; parallelism;
    budget = { deadline_s; max_heap_words; on_exhausted };
    delta_fraction }

let with_budget ?deadline_s ?max_heap_words ?on_exhausted t =
  let b = t.budget in
  {
    t with
    budget =
      {
        deadline_s = (match deadline_s with Some _ -> deadline_s | None -> b.deadline_s);
        max_heap_words =
          (match max_heap_words with Some _ -> max_heap_words | None -> b.max_heap_words);
        on_exhausted = Option.value on_exhausted ~default:b.on_exhausted;
      };
  }

(* a fresh token per call: deadlines are anchored at creation, so the
   pipeline mints one per run, not one per engine value *)
let supervisor t =
  match t.budget with
  | { deadline_s = None; max_heap_words = None; _ } -> Supervise.unlimited
  | { deadline_s; max_heap_words; _ } ->
      Supervise.create ?deadline_s ?max_heap_words ()

let fail_on_exhausted t = t.budget.on_exhausted = `Fail

let default = make ()
let naive = make ~check:Naive ~cache:Cache_off ()
let partition = make ~check:Partition ~cache:Cache_off ()
let columnar = make ()

(* hosts can recommend absurd counts (128-core build machines); past
   ~16 domains every stage here is memory-bound and extra workers only
   buy GC-barrier contention *)
let max_domains = 16

let parallel ?domains () =
  let n =
    match domains with
    | Some d -> max 1 d
    | None -> min max_domains (Stdlib.Domain.recommended_domain_count ())
  in
  make ~parallelism:(if n <= 1 then Sequential else Domains n) ()

let of_fd_variant = function
  | `Naive -> naive
  | `Partition -> partition

let domain_count t =
  match t.parallelism with Sequential -> 1 | Domains n -> max 1 n

let cached t = match t.cache with Cache_shared -> true | Cache_off -> false

let check_to_string = function
  | Naive -> "naive"
  | Partition -> "partition"
  | Columnar -> "columnar"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "naive" -> Some naive
  | "partition" -> Some partition
  | "columnar" | "default" -> Some columnar
  | "parallel" -> Some (parallel ())
  | s when String.length s > 9 && String.sub s 0 9 = "parallel:" -> (
      match int_of_string_opt (String.sub s 9 (String.length s - 9)) with
      | Some n when n >= 1 -> Some (parallel ~domains:n ())
      | _ -> None)
  | _ -> None

let pp ppf t =
  Format.fprintf ppf "%s/%s/%s" (check_to_string t.check)
    (match t.cache with Cache_shared -> "shared-cache" | Cache_off -> "no-cache")
    (match t.parallelism with
    | Sequential -> "sequential"
    | Domains n -> Printf.sprintf "%d-domains" n);
  (match t.budget.deadline_s with
  | Some d -> Format.fprintf ppf "/deadline=%gs" d
  | None -> ());
  (match t.budget.max_heap_words with
  | Some w -> Format.fprintf ppf "/max-heap=%dw" w
  | None -> ());
  if t.budget <> no_budget && t.budget.on_exhausted = `Fail then
    Format.fprintf ppf "/fail-on-exhausted"

let to_string t = Format.asprintf "%a" pp t

let describe t =
  let d = Column_store.delta_stats () in
  let c = Ooc.config () in
  let o = Ooc.stats () in
  let swept = o.Ooc.zone_segments_skipped + o.Ooc.zone_segments_swept in
  Printf.sprintf
    "%s [%d domain%s resolved; host recommends %d, cap %d] [delta: %g \
     fallback, %d rows absorbed, %d incremental / %d full refreshes] [ooc: \
     %d-row segments, spill %s, budget %s, %d resident segs (%d words), %d \
     spills / %d maps / %d evictions, zone skip %d/%d%s, %d IND \
     short-circuits]"
    (to_string t) (domain_count t)
    (if domain_count t = 1 then "" else "s")
    (Stdlib.Domain.recommended_domain_count ())
    max_domains t.delta_fraction d.Column_store.rows_absorbed
    d.Column_store.incremental_refreshes d.Column_store.full_rebuilds
    c.Ooc.segment_rows
    (match c.Ooc.spill_dir with Some dir -> dir | None -> "off")
    (match c.Ooc.resident_budget_words with
    | Some w -> Printf.sprintf "%dw" w
    | None -> "off")
    o.Ooc.resident_segments o.Ooc.resident_words o.Ooc.spill_writes
    o.Ooc.map_loads o.Ooc.evictions o.Ooc.zone_segments_skipped swept
    (if swept = 0 then ""
     else
       Printf.sprintf " (%.0f%%)"
         (100. *. float_of_int o.Ooc.zone_segments_skipped /. float_of_int swept))
    o.Ooc.ind_zone_short_circuits

let pool t =
  match t.parallelism with
  | Sequential -> None
  | Domains n when n <= 1 -> None
  | Domains n -> Some (Domain_pool.get (min n max_domains))
