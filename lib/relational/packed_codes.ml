(* Immutable bit-packed vectors of dictionary codes.

   A sealed column segment stores its codes at the dictionary's width —
   1/2/4/8/16/32 bits per code, little-endian within and across bytes —
   so a 64k-row segment over a boolean-like dictionary costs 8 KB
   instead of 512 KB of boxed-free [int array]. The packed payload is a
   plain [Bytes.t] while resident, and a char [Bigarray] when mapped
   back from a spill file, so a segment written to disk is byte-for-byte
   the buffer [Unix.map_file] hands back — spilling and mapping cannot
   change a single code.

   [Raw] is the escape hatch (and the int-array fast path): codes too
   wide to pack (beyond 32 bits, which no realistic dictionary reaches)
   stay as the original array, and [decode_into]/[get] treat it as the
   identity. *)

type buf =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t =
  | Raw of int array
  | Packed of { width : int; n : int; data : Bytes.t }
  | Mapped of { width : int; n : int; data : buf }

(* smallest supported width holding every code in [0, max_code]; 0 when
   even 32 bits cannot (callers fall back to [Raw]) *)
let width_for max_code =
  if max_code < 2 then 1
  else if max_code < 4 then 2
  else if max_code < 16 then 4
  else if max_code < 256 then 8
  else if max_code < 65536 then 16
  else if max_code < 1 lsl 32 then 32
  else 0

let packed_bytes ~width n = ((n * width) + 7) / 8

let length = function
  | Raw a -> Array.length a
  | Packed { n; _ } | Mapped { n; _ } -> n

let width = function
  | Raw _ -> 0
  | Packed { width; _ } | Mapped { width; _ } -> width

(* resident heap cost in words, the unit the residency budget is
   denominated in; a mapped payload's pages are the kernel's to evict,
   so it is charged the same as its resident twin (the budget tracks
   address-space pressure, not RSS) *)
let heap_words = function
  | Raw a -> Array.length a + 2
  | Packed { n; width; _ } | Mapped { n; width; _ } ->
      (packed_bytes ~width n / (Sys.word_size / 8)) + 3

let pack ~width (src : int array) off n =
  if width = 0 then Raw (Array.sub src off n)
  else begin
    let data = Bytes.make (packed_bytes ~width n) '\000' in
    (match width with
    | 8 ->
        for i = 0 to n - 1 do
          Bytes.unsafe_set data i (Char.unsafe_chr (src.(off + i) land 0xff))
        done
    | 16 ->
        for i = 0 to n - 1 do
          let c = src.(off + i) in
          Bytes.unsafe_set data (2 * i) (Char.unsafe_chr (c land 0xff));
          Bytes.unsafe_set data ((2 * i) + 1)
            (Char.unsafe_chr ((c lsr 8) land 0xff))
        done
    | 32 ->
        for i = 0 to n - 1 do
          let c = src.(off + i) in
          Bytes.unsafe_set data (4 * i) (Char.unsafe_chr (c land 0xff));
          Bytes.unsafe_set data ((4 * i) + 1)
            (Char.unsafe_chr ((c lsr 8) land 0xff));
          Bytes.unsafe_set data ((4 * i) + 2)
            (Char.unsafe_chr ((c lsr 16) land 0xff));
          Bytes.unsafe_set data ((4 * i) + 3)
            (Char.unsafe_chr ((c lsr 24) land 0xff))
        done
    | w ->
        (* sub-byte widths: [8 / w] codes per byte, lowest bits first *)
        let per = 8 / w in
        for i = 0 to n - 1 do
          let byte = i / per and shift = w * (i mod per) in
          let prev = Char.code (Bytes.unsafe_get data byte) in
          Bytes.unsafe_set data byte
            (Char.unsafe_chr (prev lor (src.(off + i) lsl shift)))
        done);
    Packed { width; n; data }
  end

let raw a = Raw a

let of_array (src : int array) off n =
  let m = ref 0 in
  for i = off to off + n - 1 do
    if src.(i) > !m then m := src.(i)
  done;
  pack ~width:(width_for !m) src off n

(* The two decode loops are intentionally twinned: [Bytes] and
   [Bigarray] have no common zero-cost accessor, and this is the inner
   loop of every segment sweep. *)

let decode_bytes_into ~width (data : Bytes.t) n (dst : int array) =
  match width with
  | 8 ->
      for i = 0 to n - 1 do
        dst.(i) <- Char.code (Bytes.unsafe_get data i)
      done
  | 16 ->
      for i = 0 to n - 1 do
        dst.(i) <-
          Char.code (Bytes.unsafe_get data (2 * i))
          lor (Char.code (Bytes.unsafe_get data ((2 * i) + 1)) lsl 8)
      done
  | 32 ->
      for i = 0 to n - 1 do
        dst.(i) <-
          Char.code (Bytes.unsafe_get data (4 * i))
          lor (Char.code (Bytes.unsafe_get data ((4 * i) + 1)) lsl 8)
          lor (Char.code (Bytes.unsafe_get data ((4 * i) + 2)) lsl 16)
          lor (Char.code (Bytes.unsafe_get data ((4 * i) + 3)) lsl 24)
      done
  | w ->
      let per = 8 / w in
      let mask = (1 lsl w) - 1 in
      for i = 0 to n - 1 do
        let byte = Char.code (Bytes.unsafe_get data (i / per)) in
        dst.(i) <- (byte lsr (w * (i mod per))) land mask
      done

let decode_buf_into ~width (data : buf) n (dst : int array) =
  match width with
  | 8 ->
      for i = 0 to n - 1 do
        dst.(i) <- Char.code (Bigarray.Array1.unsafe_get data i)
      done
  | 16 ->
      for i = 0 to n - 1 do
        dst.(i) <-
          Char.code (Bigarray.Array1.unsafe_get data (2 * i))
          lor (Char.code (Bigarray.Array1.unsafe_get data ((2 * i) + 1)) lsl 8)
      done
  | 32 ->
      for i = 0 to n - 1 do
        dst.(i) <-
          Char.code (Bigarray.Array1.unsafe_get data (4 * i))
          lor (Char.code (Bigarray.Array1.unsafe_get data ((4 * i) + 1)) lsl 8)
          lor (Char.code (Bigarray.Array1.unsafe_get data ((4 * i) + 2))
              lsl 16)
          lor (Char.code (Bigarray.Array1.unsafe_get data ((4 * i) + 3))
              lsl 24)
      done
  | w ->
      let per = 8 / w in
      let mask = (1 lsl w) - 1 in
      for i = 0 to n - 1 do
        let byte = Char.code (Bigarray.Array1.unsafe_get data (i / per)) in
        dst.(i) <- (byte lsr (w * (i mod per))) land mask
      done

let decode_into t (dst : int array) =
  match t with
  | Raw a -> Array.blit a 0 dst 0 (Array.length a)
  | Packed { width; n; data } -> decode_bytes_into ~width data n dst
  | Mapped { width; n; data } -> decode_buf_into ~width data n dst

let to_array t =
  let dst = Array.make (length t) 0 in
  decode_into t dst;
  dst

let get t i =
  match t with
  | Raw a -> a.(i)
  | Packed { width; data; _ } -> (
      match width with
      | 8 -> Char.code (Bytes.get data i)
      | 16 ->
          Char.code (Bytes.get data (2 * i))
          lor (Char.code (Bytes.get data ((2 * i) + 1)) lsl 8)
      | 32 ->
          Char.code (Bytes.get data (4 * i))
          lor (Char.code (Bytes.get data ((4 * i) + 1)) lsl 8)
          lor (Char.code (Bytes.get data ((4 * i) + 2)) lsl 16)
          lor (Char.code (Bytes.get data ((4 * i) + 3)) lsl 24)
      | w ->
          let per = 8 / w in
          (Char.code (Bytes.get data (i / per)) lsr (w * (i mod per)))
          land ((1 lsl w) - 1))
  | Mapped { width; data; _ } -> (
      match width with
      | 8 -> Char.code (Bigarray.Array1.get data i)
      | 16 ->
          Char.code (Bigarray.Array1.get data (2 * i))
          lor (Char.code (Bigarray.Array1.get data ((2 * i) + 1)) lsl 8)
      | 32 ->
          Char.code (Bigarray.Array1.get data (4 * i))
          lor (Char.code (Bigarray.Array1.get data ((4 * i) + 1)) lsl 8)
          lor (Char.code (Bigarray.Array1.get data ((4 * i) + 2)) lsl 16)
          lor (Char.code (Bigarray.Array1.get data ((4 * i) + 3)) lsl 24)
      | w ->
          let per = 8 / w in
          (Char.code (Bigarray.Array1.get data (i / per))
          lsr (w * (i mod per)))
          land ((1 lsl w) - 1))

(* ------------------------------------------------------------------ *)
(* spill files                                                         *)
(* ------------------------------------------------------------------ *)

let write_all fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

(* 64-bit little-endian fallback for unpackable segments *)
let raw_to_bytes (a : int array) =
  let n = Array.length a in
  let data = Bytes.create (8 * n) in
  Array.iteri (fun i c -> Bytes.set_int64_le data (8 * i) (Int64.of_int c)) a;
  data

let write_file path t =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      match t with
      | Packed { data; _ } -> write_all fd data
      | Raw a -> write_all fd (raw_to_bytes a)
      | Mapped _ ->
          (* a mapped payload already lives in its spill file *)
          invalid_arg "Packed_codes.write_file: already mapped")

let map_file path ~width ~len =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      if width = 0 then begin
        (* unpackable segments round-trip through the 64-bit encoding *)
        let bytes = 8 * len in
        let g =
          Unix.map_file fd Bigarray.char Bigarray.c_layout false [| bytes |]
        in
        let data = Bigarray.array1_of_genarray g in
        let a = Array.make len 0 in
        for i = 0 to len - 1 do
          let v = ref 0 in
          for b = 7 downto 0 do
            v :=
              (!v lsl 8)
              lor Char.code (Bigarray.Array1.get data ((8 * i) + b))
          done;
          a.(i) <- !v
        done;
        Raw a
      end
      else begin
        let bytes = packed_bytes ~width len in
        let g =
          Unix.map_file fd Bigarray.char Bigarray.c_layout false [| bytes |]
        in
        Mapped { width; n = len; data = Bigarray.array1_of_genarray g }
      end)
