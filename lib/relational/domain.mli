(** Attribute domains (column types).

    Domains are used by the CSV loader to type columns, by the SQL DDL
    reader, and by the exhaustive inclusion-dependency baseline to prune
    incompatible attribute pairs. *)

type t =
  | Bool
  | Int
  | Float
  | String
  | Date
  | Unknown  (** no non-null value observed yet *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_value : Value.t -> t
(** Domain of a single value; [of_value Null = Unknown]. *)

val lub : t -> t -> t
(** Least upper bound used when inferring a column domain from data:
    [Unknown] is neutral, [Int ⊔ Float = Float], anything else mixed
    generalizes to [String]. *)

val member : t -> Value.t -> bool
(** [member d v] holds when [v] fits in domain [d]. [Null] belongs to
    every domain; [Int] values belong to [Float]. *)

val compatible : t -> t -> bool
(** Two domains can share values (used to prune IND candidates):
    equal domains, numeric pairs, or any pair involving [Unknown]. *)

val parse_opt : t -> string -> Value.t option
(** [parse_opt d s] reads [s] as a value of domain [d]; empty string is
    [Some Null]; [None] when [s] does not parse in [d]. *)

val parse : t -> string -> Value.t
(** Strict {!parse_opt}: raises [Error.Error] (code {!Error.Type_mismatch},
    severity [Recoverable]) when [s] does not parse in [d]. *)

val of_sql_type : string -> t
(** Map an SQL type name ([INT], [VARCHAR(20)], [DATE], ...) to a domain;
    unknown names map to [String]. *)

val infer_column : Value.t list -> t
(** Fold {!lub} over the domains of the given values. *)
