(** Coordinated delta refresh of a whole database's memoized stores.

    After a burst of mutations ({!Database.insert},
    {!Table.delete_rows}, …), {!database} replays every relation's
    mutation log into its stashed {!Column_store} in one coordinated
    pass: each store refreshes incrementally when the delta is within
    the fallback fraction (full rebuild otherwise), and cross-store
    equi-join memos are patched {e exactly} from the refreshed stores'
    added-key summaries rather than dropped — see
    {!Column_store.refresh_all}.

    Refreshing is never required for correctness: a store handed out by
    [Column_store.of_table] always refreshes itself on demand. The
    database-level pass exists so re-verification after mutation
    ([Pipeline.refresh_checked], the serve [refresh] request) pays one
    coordinated delta pass up front — keeping join memos alive — and so
    the cost can be measured and reported. *)

type outcome = Column_store.refresh_outcome =
  | Store_fresh
  | Store_absorbed of int
  | Store_rebuilt

type report = {
  relations : (string * outcome) list;
      (** relations that had a stashed store, in schema order;
          store-less relations (never verified, or explicitly cleared)
          are absent *)
  fresh : int;
  absorbed : int;  (** stores refreshed incrementally *)
  rebuilt : int;
  rows_applied : int;  (** delta rows absorbed across all stores *)
}

val database : ?delta_fraction:float -> Database.t -> report
(** Refresh every relation's stashed store (see
    {!Column_store.refresh_all}); [delta_fraction] defaults to
    {!Column_store.default_delta_fraction}. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp : Format.formatter -> report -> unit
val to_string : report -> string
