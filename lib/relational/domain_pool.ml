(* A persistent pool of worker domains with dynamic (bag-of-tasks)
   scheduling.

   The pool exists because dependency verification fans the same shape
   of work out over and over — encode a column, sweep a partition,
   build one side's distinct set — and spawning domains per call (the
   PR 2 warm-up) pays the ~50us spawn cost on every batch. Workers here
   are spawned once, parked on a condition variable between batches,
   and claim task indices with [Atomic.fetch_and_add] so an uneven
   batch self-balances (a worker that finishes its task "steals" the
   next unclaimed index from the shared bag).

   Determinism contract: [parallel_for] and [map_array] identify tasks
   by index and write results by index, so the caller observes results
   in submission order whatever the interleaving. Tasks must write only
   to their own index (and read only shared state no task writes).

   Two tiers of batch:

   - [parallel_for]/[map_array]: the hot verify path. Trusted tasks,
     condition-variable parking, no per-task bookkeeping beyond one
     atomic load of the batch's supervision token.
   - [map_supervised]: the service tier. Each attempt of each task is
     fenced by a wall-clock timeout; a wedged attempt is abandoned
     (its results dropped — publication goes through per-attempt
     arrays, so a stale writer writes into a dead epoch), the stuck
     workers are written off and replaced, and the unfinished tasks
     are retried with exponential backoff on the replacement workers. *)

type job = {
  j_count : int;
  j_run : int -> unit;
  j_next : int Atomic.t;  (* next unclaimed task index *)
  j_pending : int Atomic.t;  (* tasks not yet finished *)
  j_exn : (exn * Printexc.raw_backtrace) option Atomic.t;  (* first failure *)
  j_supervise : Supervise.t;
      (* batch token: a tripped token makes the remaining tasks no-ops
         (still drained so the batch completes) *)
  j_abandoned : bool Atomic.t;
      (* set when the submitter gives up on the batch (timeout): nobody
         claims further tasks and results are never read *)
  j_late : int Atomic.t;
      (* workers written off as wedged on this job; one that eventually
         returns from its task must retire (it has been replaced) *)
}

type t = {
  size : int;  (* worker domains + the submitting caller *)
  submission : Mutex.t;
      (* serializes whole batches: the pool runs one batch at a time,
         but since the analysis daemon it can be *asked* from several
         sys-threads at once (concurrent jobs sharing one engine).
         Each submitting thread holds this for its entire batch, so
         the single-submitter invariant of [current]/[epoch]/[batches]
         is preserved; nested submission from inside a task still
         deadlocks and is still unsupported. *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  batch_done : Condition.t;
  mutable current : (int * job) option;  (* epoch-stamped active batch *)
  mutable epoch : int;
  mutable stop : bool;
  mutable handles : (int * unit Stdlib.Domain.t) list;
      (* every worker ever spawned, by domain id, until joined *)
  mutable exited : int list;  (* domain ids that left [worker_loop] *)
  mutable lost : int;  (* workers written off as wedged *)
  mutable batches : int;  (* batches served, for logs/tests *)
}

let size t = t.size
let batches t = t.batches
let lost_workers t = t.lost

let record_failure job e =
  let bt = Printexc.get_raw_backtrace () in
  ignore (Atomic.compare_and_set job.j_exn None (Some (e, bt)))

(* claim indices until the bag is empty; the last finisher signals.
   [worker] distinguishes pool domains from the submitting caller: only
   a worker retires when it turns out to have been replaced. *)
let drain t ~worker job =
  let rec claim () =
    if not (Atomic.get job.j_abandoned) then begin
      let i = Atomic.fetch_and_add job.j_next 1 in
      if i < job.j_count then begin
        (match Supervise.tripped job.j_supervise with
        | Some r ->
            (* tripped batch: drain without running so the waiters
               unblock; the caller re-raises the interrupt *)
            record_failure job (Supervise.Interrupt r)
        | None -> ( try job.j_run i with e -> record_failure job e));
        if Atomic.fetch_and_add job.j_pending (-1) = 1 then begin
          Mutex.lock t.mutex;
          Condition.broadcast t.batch_done;
          Mutex.unlock t.mutex
        end;
        if
          worker
          && Atomic.get job.j_abandoned
          && Atomic.fetch_and_add job.j_late (-1) > 0
        then raise Exit
        else claim ()
      end
    end
  in
  claim ()

let worker_loop t () =
  let served = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    let rec wait () =
      if t.stop then begin
        Mutex.unlock t.mutex;
        raise Exit
      end;
      match t.current with
      | Some (epoch, job) when epoch > !served ->
          served := epoch;
          Mutex.unlock t.mutex;
          job
      | _ ->
          Condition.wait t.work_ready t.mutex;
          wait ()
    in
    let job = wait () in
    drain t ~worker:true job;
    loop ()
  in
  (* record the exit whatever path left the loop, so shutdown knows
     this domain is joinable (a wedged worker never records and is
     never joined) *)
  Fun.protect
    ~finally:(fun () ->
      let id = (Stdlib.Domain.self () :> int) in
      Mutex.lock t.mutex;
      t.exited <- id :: t.exited;
      Mutex.unlock t.mutex)
    (fun () -> try loop () with Exit -> ())

(* caller holds [t.mutex] *)
let spawn_worker_locked t =
  let d = Stdlib.Domain.spawn (worker_loop t) in
  t.handles <- ((Stdlib.Domain.get_id d :> int), d) :: t.handles

let create n =
  let size = max 1 n in
  let t =
    {
      size;
      submission = Mutex.create ();
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      current = None;
      epoch = 0;
      stop = false;
      handles = [];
      exited = [];
      lost = 0;
      batches = 0;
    }
  in
  if size > 1 then begin
    Mutex.lock t.mutex;
    for _ = 1 to size - 1 do
      spawn_worker_locked t
    done;
    Mutex.unlock t.mutex
  end;
  t

(* Exception-safe and idempotent, including after a worker was written
   off mid-job: only domains that recorded their exit are joined (a
   join on those cannot block), wedged ones are dropped unjoined — the
   process reaps them at exit — and a second call finds [stop] already
   set and returns. The pre-hardening version joined every spawned
   worker unconditionally, which hung teardown whenever one was
   wedged and re-raised from [Domain.join] on one that died. *)
let shutdown t =
  Mutex.lock t.mutex;
  if t.stop then Mutex.unlock t.mutex
  else begin
    t.stop <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    let snapshot () =
      Mutex.lock t.mutex;
      let s = (t.exited, t.handles, t.lost) in
      Mutex.unlock t.mutex;
      s
    in
    (* parked workers exit within microseconds; wait briefly for the
       stragglers, bounded so a wedged worker cannot hang teardown *)
    let deadline = Unix.gettimeofday () +. 1.0 in
    let rec settle () =
      let exited, handles, lost = snapshot () in
      if
        List.length exited < List.length handles - lost
        && Unix.gettimeofday () < deadline
      then begin
        Unix.sleepf 0.0005;
        settle ()
      end
    in
    settle ();
    let exited, handles, _ = snapshot () in
    List.iter
      (fun (id, d) ->
        if List.mem id exited then
          try Stdlib.Domain.join d with _ -> ())
      handles;
    Mutex.lock t.mutex;
    t.handles <- [];
    Mutex.unlock t.mutex
  end

let reraise (e, bt) = Printexc.raise_with_backtrace e bt

let make_job ?(supervise = Supervise.unlimited) count run =
  {
    j_count = count;
    j_run = run;
    j_next = Atomic.make 0;
    j_pending = Atomic.make count;
    j_exn = Atomic.make None;
    j_supervise = supervise;
    j_abandoned = Atomic.make false;
    j_late = Atomic.make 0;
  }

let submit t job =
  Mutex.lock t.mutex;
  t.epoch <- t.epoch + 1;
  t.current <- Some (t.epoch, job);
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex

let clear_current t =
  Mutex.lock t.mutex;
  t.current <- None;
  Mutex.unlock t.mutex

let parallel_for ?supervise t count run =
  if count > 0 then begin
    Mutex.lock t.submission;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.submission) @@ fun () ->
    t.batches <- t.batches + 1;
    if t.size = 1 || count = 1 || t.stop then begin
      (* sequential fallback: same tasks, ascending order *)
      let tripped = ref None in
      for i = 0 to count - 1 do
        match !tripped with
        | Some _ -> ()
        | None -> (
            match supervise with
            | Some s when Supervise.tripped s <> None ->
                tripped := Supervise.tripped s
            | _ -> run i)
      done;
      match !tripped with
      | Some r -> raise (Supervise.Interrupt r)
      | None -> ()
    end
    else begin
      let job = make_job ?supervise count run in
      submit t job;
      (* the caller is a worker too *)
      drain t ~worker:false job;
      Mutex.lock t.mutex;
      while Atomic.get job.j_pending > 0 do
        Condition.wait t.batch_done t.mutex
      done;
      t.current <- None;
      Mutex.unlock t.mutex;
      match Atomic.get job.j_exn with None -> () | Some f -> reraise f
    end
  end

let map_array ?supervise t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ?supervise t n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some y -> y | None -> assert false) out
  end

(* ------------------------------------------------------------------ *)
(* supervised batches: timeout, retry, worker replacement               *)
(* ------------------------------------------------------------------ *)

type failure =
  | Crashed of exn  (* every attempt raised; the last exception *)
  | Timed_out  (* no attempt finished inside its timeout *)
  | Interrupted of Supervise.reason  (* the batch token tripped *)

let poll_interval = 0.0005
let abandon_grace = 0.004  (* let merely-slow tasks drain before write-off *)

(* Wait for [still_alive] slots of [done_] to flip, up to the deadline
   or a token trip. Publication goes through the per-slot atomics, so
   reading [vals]/[errs] after a flipped flag is race-free. *)
let wait_done ?deadline supervise done_ =
  let k = Array.length done_ in
  let all_done () =
    let rec go j = j >= k || (Atomic.get done_.(j) && go (j + 1)) in
    go 0
  in
  let rec wait () =
    if all_done () then `Completed
    else
      match Supervise.tripped supervise with
      | Some r -> `Interrupted r
      | None -> (
          match deadline with
          | Some d when Unix.gettimeofday () > d -> `Timed_out
          | _ ->
              Unix.sleepf poll_interval;
              wait ())
  in
  wait ()

(* Abandon a running batch: stop further claims, give in-flight tasks a
   short grace to drain, then write off whatever is still running as
   wedged — spawn one replacement worker per write-off and arm
   [j_late] so a written-off worker that eventually returns retires
   instead of doubling the pool. *)
let abandon t job done_ =
  Atomic.set job.j_abandoned true;
  clear_current t;
  let grace = Unix.gettimeofday () +. abandon_grace in
  let in_flight () =
    let claimed = min (Atomic.get job.j_next) job.j_count in
    let finished =
      Array.fold_left
        (fun acc d -> if Atomic.get d then acc + 1 else acc)
        0 done_
    in
    claimed - finished
  in
  let rec settle () =
    let n = in_flight () in
    if n > 0 && Unix.gettimeofday () < grace then begin
      Unix.sleepf poll_interval;
      settle ()
    end
    else n
  in
  let stuck = settle () in
  if stuck > 0 then begin
    Atomic.set job.j_late stuck;
    Mutex.lock t.mutex;
    t.lost <- t.lost + stuck;
    for _ = 1 to stuck do
      spawn_worker_locked t
    done;
    Mutex.unlock t.mutex
  end

let map_supervised t ?(supervise = Supervise.unlimited) ?timeout_s
    ?(retries = 1) ?(backoff_s = 0.002) f xs =
  Mutex.lock t.submission;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.submission) @@ fun () ->
  let retries = max 0 retries in
  let n = Array.length xs in
  let results = Array.make n None in
  let pending = ref (List.init n Fun.id) in
  let attempt = ref 0 in
  let finished = ref false in
  while not !finished do
    let last = !attempt >= retries in
    if !attempt > 0 then
      Unix.sleepf (backoff_s *. float_of_int (1 lsl min (!attempt - 1) 16));
    let idxs = Array.of_list !pending in
    let k = Array.length idxs in
    (* per-attempt result arrays: the attempt is the epoch. A writer
       from an abandoned attempt lands here, never in [results]. *)
    let vals = Array.make k None in
    let errs = Array.make k None in
    let done_ = Array.init k (fun _ -> Atomic.make false) in
    let run_one j =
      (match f xs.(idxs.(j)) with
      | v -> vals.(j) <- Some v
      | exception e -> errs.(j) <- Some e);
      Atomic.set done_.(j) true
    in
    let verdict =
      if t.size = 1 || t.stop || k = 1 then begin
        (* no workers (or a 1-task batch): run inline. The token is
           honored between tasks; a wedged task cannot be preempted
           here — single-domain hosts degrade to cooperative-only. *)
        let rec go j =
          if j >= k then `Completed
          else
            match Supervise.tripped supervise with
            | Some r -> `Interrupted r
            | None ->
                run_one j;
                go (j + 1)
        in
        go 0
      end
      else begin
        t.batches <- t.batches + 1;
        let job = make_job ~supervise k run_one in
        submit t job;
        let deadline =
          Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s
        in
        let v = wait_done ?deadline supervise done_ in
        (match v with
        | `Completed -> clear_current t
        | `Timed_out | `Interrupted _ -> abandon t job done_);
        v
      end
    in
    let next = ref [] in
    for j = k - 1 downto 0 do
      let i = idxs.(j) in
      if Atomic.get done_.(j) then
        match errs.(j) with
        | None -> results.(i) <- Some (Ok (Option.get vals.(j)))
        | Some (Supervise.Interrupt r) ->
            results.(i) <- Some (Error (Interrupted r))
        | Some e ->
            if last then results.(i) <- Some (Error (Crashed e))
            else next := i :: !next
      else
        (* never finished: wedged, abandoned with the batch, or left
           unclaimed behind a wedge *)
        match verdict with
        | `Interrupted r -> results.(i) <- Some (Error (Interrupted r))
        | `Completed | `Timed_out ->
            if last then results.(i) <- Some (Error Timed_out)
            else next := i :: !next
    done;
    (match verdict with
    | `Interrupted _ -> finished := true
    | `Completed | `Timed_out -> ());
    pending := !next;
    incr attempt;
    if !pending = [] || !attempt > retries then finished := true
  done;
  (* a token trip can leave requeued slots unrecorded *)
  Array.map
    (function
      | Some r -> r
      | None -> (
          match Supervise.tripped supervise with
          | Some reason -> Error (Interrupted reason)
          | None -> Error Timed_out))
    results

(* ------------------------------------------------------------------ *)
(* shared registry                                                      *)
(* ------------------------------------------------------------------ *)

(* One pool per requested size, spawned on first request and reused for
   the rest of the process: every [Engine.t] asking for [n] domains
   shares the same [n]-sized pool, so pipeline stages never re-spawn.
   Joined at exit so the runtime shuts down cleanly. *)

let registry : (int, t) Hashtbl.t = Hashtbl.create 4
let registry_mutex = Mutex.create ()
let at_exit_registered = ref false

let get n =
  let n = max 1 n in
  Mutex.lock registry_mutex;
  let pool =
    match Hashtbl.find_opt registry n with
    | Some p -> p
    | None ->
        let p = create n in
        Hashtbl.add registry n p;
        if not !at_exit_registered then begin
          at_exit_registered := true;
          Stdlib.at_exit (fun () ->
              Mutex.lock registry_mutex;
              let pools = Hashtbl.fold (fun _ p acc -> p :: acc) registry [] in
              Hashtbl.reset registry;
              Mutex.unlock registry_mutex;
              (* exception-safe: one pool failing to shut down must not
                 keep the rest from being joined *)
              List.iter (fun p -> try shutdown p with _ -> ()) pools)
        end;
        p
  in
  Mutex.unlock registry_mutex;
  pool
