(* A persistent pool of worker domains with dynamic (bag-of-tasks)
   scheduling.

   The pool exists because dependency verification fans the same shape
   of work out over and over — encode a column, sweep a partition,
   build one side's distinct set — and spawning domains per call (the
   PR 2 warm-up) pays the ~50us spawn cost on every batch. Workers here
   are spawned once, parked on a condition variable between batches,
   and claim task indices with [Atomic.fetch_and_add] so an uneven
   batch self-balances (a worker that finishes its task "steals" the
   next unclaimed index from the shared bag).

   Determinism contract: [parallel_for] and [map_array] identify tasks
   by index and write results by index, so the caller observes results
   in submission order whatever the interleaving. Tasks must write only
   to their own index (and read only shared state no task writes). *)

type job = {
  j_count : int;
  j_run : int -> unit;
  j_next : int Atomic.t;  (* next unclaimed task index *)
  j_pending : int Atomic.t;  (* tasks not yet finished *)
  j_exn : (exn * Printexc.raw_backtrace) option Atomic.t;  (* first failure *)
}

type t = {
  size : int;  (* worker domains + the submitting caller *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  batch_done : Condition.t;
  mutable current : (int * job) option;  (* epoch-stamped active batch *)
  mutable epoch : int;
  mutable stop : bool;
  mutable workers : unit Stdlib.Domain.t list;
  mutable batches : int;  (* batches served, for logs/tests *)
}

let size t = t.size
let batches t = t.batches

(* claim indices until the bag is empty; the last finisher signals *)
let drain t job =
  let rec claim () =
    let i = Atomic.fetch_and_add job.j_next 1 in
    if i < job.j_count then begin
      (try job.j_run i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         ignore
           (Atomic.compare_and_set job.j_exn None (Some (e, bt))));
      if Atomic.fetch_and_add job.j_pending (-1) = 1 then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.batch_done;
        Mutex.unlock t.mutex
      end;
      claim ()
    end
  in
  claim ()

let worker_loop t () =
  let served = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    let rec wait () =
      if t.stop then begin
        Mutex.unlock t.mutex;
        raise Exit
      end;
      match t.current with
      | Some (epoch, job) when epoch > !served ->
          served := epoch;
          Mutex.unlock t.mutex;
          job
      | _ ->
          Condition.wait t.work_ready t.mutex;
          wait ()
    in
    let job = wait () in
    drain t job;
    loop ()
  in
  try loop () with Exit -> ()

let create n =
  let size = max 1 n in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      current = None;
      epoch = 0;
      stop = false;
      workers = [];
      batches = 0;
    }
  in
  if size > 1 then
    t.workers <- List.init (size - 1) (fun _ -> Stdlib.Domain.spawn (worker_loop t));
  t

let shutdown t =
  if not t.stop then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    List.iter Stdlib.Domain.join t.workers;
    t.workers <- []
  end

let reraise (e, bt) = Printexc.raise_with_backtrace e bt

let parallel_for t count run =
  if count > 0 then begin
    t.batches <- t.batches + 1;
    if t.size = 1 || count = 1 || t.stop then
      (* sequential fallback: same tasks, ascending order *)
      for i = 0 to count - 1 do
        run i
      done
    else begin
      let job =
        {
          j_count = count;
          j_run = run;
          j_next = Atomic.make 0;
          j_pending = Atomic.make count;
          j_exn = Atomic.make None;
        }
      in
      Mutex.lock t.mutex;
      t.epoch <- t.epoch + 1;
      t.current <- Some (t.epoch, job);
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      (* the caller is a worker too *)
      drain t job;
      Mutex.lock t.mutex;
      while Atomic.get job.j_pending > 0 do
        Condition.wait t.batch_done t.mutex
      done;
      t.current <- None;
      Mutex.unlock t.mutex;
      match Atomic.get job.j_exn with None -> () | Some f -> reraise f
    end
  end

let map_array t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for t n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some y -> y | None -> assert false) out
  end

(* ------------------------------------------------------------------ *)
(* shared registry                                                      *)
(* ------------------------------------------------------------------ *)

(* One pool per requested size, spawned on first request and reused for
   the rest of the process: every [Engine.t] asking for [n] domains
   shares the same [n]-sized pool, so pipeline stages never re-spawn.
   Joined at exit so the runtime shuts down cleanly. *)

let registry : (int, t) Hashtbl.t = Hashtbl.create 4
let registry_mutex = Mutex.create ()
let at_exit_registered = ref false

let get n =
  let n = max 1 n in
  Mutex.lock registry_mutex;
  let pool =
    match Hashtbl.find_opt registry n with
    | Some p -> p
    | None ->
        let p = create n in
        Hashtbl.add registry n p;
        if not !at_exit_registered then begin
          at_exit_registered := true;
          Stdlib.at_exit (fun () ->
              Mutex.lock registry_mutex;
              let pools = Hashtbl.fold (fun _ p acc -> p :: acc) registry [] in
              Hashtbl.reset registry;
              Mutex.unlock registry_mutex;
              List.iter shutdown pools)
        end;
        p
  in
  Mutex.unlock registry_mutex;
  pool
