(** Single-pass batching planner for bulk dependency verification.

    The §6 algorithms are extension-intensive in two specific shapes:
    RHS-Discovery tests one candidate FD per remaining attribute
    against the same (table, LHS), and IND-Discovery counts
    [N_k / N_l / N_kl] per equi-join of Q, where projection sides recur
    across joins. This planner groups such requests and answers each
    group from one pass over the {!Column_store}:

    - an {b FD group} computes the LHS stripped partition once and
      answers every RHS attribute with a single refinement sweep,
      instead of [|rhs|] independent full scans;
    - an {b IND batch} builds each distinct [(table, attrs)] side's
      hash once and reuses it across every probe that mentions it,
      fanning per-table builds over the engine's persistent
      {!Domain_pool}.

    {b Determinism contract.} Results come back in submission order,
    and every verdict/count is engine- and domain-count-independent
    (the engine-equivalence property), so an oracle consuming batched
    answers sees exactly the decision sequence of the per-candidate
    code it replaced. Golden pipeline artifacts are byte-identical
    between the batched and naive engines (asserted by bench B13 and
    the verify-plan suite).

    Engine dispatch: [Naive] keeps genuinely per-candidate FD row
    scans (it is the measured unbatched baseline) but still shares
    distinct sets within an IND batch; [Partition] and [Columnar] take
    the columnar batch paths; [Cache_off] builds throwaway stores
    scoped to the batch; [Domains n] draws workers from the shared
    {!Domain_pool.get} pool. *)

type side = string * string list
(** A projection side: relation name × attribute list. *)

type counts = { n_left : int; n_right : int; n_join : int }
(** The §6.1 triple for one probe: [||r_k[A_k]||], [||r_l[A_l]||],
    [||r_k[A_k] ⋈ r_l[A_l]||]. *)

val fd_group :
  ?engine:Engine.t ->
  ?supervise:Supervise.t ->
  Table.t ->
  lhs:string list ->
  rhs:string list ->
  (string * bool) list
(** [fd_group table ~lhs ~rhs] is [(a, lhs -> a holds)] for every
    [a] of [rhs], in order. [lhs] should be normalized
    ([Attribute.Names.normalize]) so memoized verdicts are shared with
    single-FD checks. [supervise] is polled at sweep granularity (per
    full scan on [Naive], per batched pass otherwise); a trip raises
    [Supervise.Interrupt] for the discovery loop to catch at a group
    boundary. *)

val ind_batch :
  ?engine:Engine.t ->
  ?supervise:Supervise.t ->
  Database.t ->
  (side * side) list ->
  counts list
(** [ind_batch db probes] answers every [(left, right)] probe, in
    order. Every relation mentioned must resolve in [db] and every
    attribute in its relation (raises [Not_found] / [Invalid_argument]
    otherwise — filter with resolvability first, as IND-Discovery
    does). [supervise] is polled per side build and per probe; a trip
    raises [Supervise.Interrupt]. *)
