(** A relational database [(R, E)]: a schema plus one table per relation.

    This module exposes exactly the counting interface the paper's
    IND-Discovery algorithm issues against a live DBMS (§2, §6.1). *)

type t

val create : Schema.t -> t
(** Fresh database with empty extensions. *)

val schema : t -> Schema.t
val table : t -> string -> Table.t
(** Raises [Not_found] for an unknown relation. *)

val table_opt : t -> string -> Table.t option

val insert : t -> string -> Value.t list -> unit
(** Append a tuple into the named relation's extension. *)

val insert_many : t -> string -> Value.t list list -> unit

val replace_table : t -> Table.t -> unit
(** Replace a relation's schema and extension with the given table's
    (added when absent) — used when restructuring drops columns. *)

val add_relation : t -> Relation.t -> unit
(** Extend the schema with a new (empty) relation at runtime — used when
    the expert conceptualizes a new relation during IND-Discovery.
    Raises [Invalid_argument] on a duplicate name. *)

val cardinality : t -> string -> int

val count_distinct : ?engine:Engine.t -> t -> string -> string list -> int
(** [count_distinct db r x] is the paper's [||r[X]||]. The default
    {!Engine.default} answers from the memoized column store; pass
    {!Engine.naive} for the row-at-a-time seed path. *)

val join_count :
  ?engine:Engine.t -> t -> string * string list -> string * string list -> int
(** [join_count db (r1, x1) (r2, x2)] is [||r1[X1] ⋈ r2[X2]||] —
    columnar engines intersect the two memoized distinct sets. *)

val total_tuples : t -> int

val check_constraints : t -> (unit, string list) result
(** Check every relation's dictionary constraints against its extension. *)

val copy_structure : t -> t
(** A new database with the same schema and fresh empty tables. *)

val pp_stats : Format.formatter -> t -> unit
(** One line per relation: name, arity, cardinality. *)
