(** Immutable bit-packed vectors of dictionary codes.

    Sealed column segments store their codes at 1/2/4/8/16/32 bits per
    code (little-endian bit order), with a plain [int array] fast path
    ([raw]) for unpackable widths. The packed byte image is exactly
    what a spill file contains, so spilling and mapping back cannot
    alter codes. *)

type buf =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t =
  | Raw of int array  (** unpacked fast path / unpackable fallback *)
  | Packed of { width : int; n : int; data : Bytes.t }
  | Mapped of { width : int; n : int; data : buf }
      (** mmap-backed view of a spill file *)

val width_for : int -> int
(** [width_for max_code] is the smallest supported width (1/2/4/8/16/32)
    that can hold every code in [\[0, max_code\]], or [0] if none can
    (callers fall back to [Raw]). *)

val packed_bytes : width:int -> int -> int
(** [packed_bytes ~width n] is the byte length of a packed payload. *)

val pack : width:int -> int array -> int -> int -> t
(** [pack ~width src off n] packs [src.(off .. off+n-1)]. [width] must
    come from {!width_for}; [width = 0] yields [Raw]. *)

val raw : int array -> t
(** Wrap an int array without packing (the caller transfers ownership:
    the array must not be mutated afterwards). *)

val of_array : int array -> int -> int -> t
(** [of_array src off n] packs at the smallest width that fits the
    slice's maximum code. *)

val length : t -> int
val width : t -> int
(** Pack width in bits; [0] for [Raw]. *)

val heap_words : t -> int
(** Approximate resident heap cost in words (the residency budget's
    unit). *)

val get : t -> int -> int
val decode_into : t -> int array -> unit
(** [decode_into t dst] writes all [length t] codes into [dst.(0..)].
    [dst] may be longer than [length t]. *)

val to_array : t -> int array

val write_file : string -> t -> unit
(** Write the packed payload (or the 64-bit LE encoding of a [Raw]) to
    a spill file. Raises [Invalid_argument] on [Mapped] payloads, which
    already live in their spill file. *)

val map_file : string -> width:int -> len:int -> t
(** Map a spill file written by {!write_file} back as a [Mapped]
    payload ([Raw] for [width = 0]). *)
