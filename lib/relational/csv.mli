(** Minimal RFC-4180-style CSV reader/writer used to load and dump
    database extensions.

    Quoting rules: a field containing a comma, a double quote, or a
    newline is written quoted; embedded quotes are doubled. Empty fields
    load as NULL when typed through a {!Domain.t}.

    Every entry point comes in two flavors: strict (raises
    [Error.Error] with a positioned message) and lenient (drops the
    offending row and reports it, for quarantine-mode loading). *)

type syntax_error = {
  se_row : int;  (** 0-based index among all rows, header included *)
  se_line : int;  (** 1-based line where the offending quote opened *)
  se_col : int;  (** 1-based column of the offending quote *)
  se_message : string;
}

val parse : string -> string list list
(** Parse a whole CSV document into rows of raw fields. Handles quoted
    fields with embedded separators, doubled quotes and [\r\n] line
    endings. A trailing newline does not produce an empty row.
    Raises [Error.Error] (code {!Error.Csv_syntax}) with the line/column
    of the opening quote on an unterminated quoted field. *)

val parse_lenient : string -> string list list * syntax_error list
(** Like {!parse} but never raises: a row torn by an unterminated quote
    is dropped and reported. *)

val render : string list list -> string
(** Inverse of {!parse} (up to quoting normalization). *)

val load :
  ?header:bool ->
  ?mode:[ `Strict | `Quarantine ] ->
  Relation.t ->
  string ->
  (Table.t * Quarantine.report option, Error.t) result
(** [load rel csv] builds a table for [rel] from CSV text. With
    [~header:true] (default) the first row names the columns and they may
    appear in any order; without a header the columns must follow the
    declared attribute order. Fields are parsed through each attribute's
    declared domain ({!Domain.parse}); attributes with domain [Unknown]
    use {!Value.parse}.

    [~mode:`Strict] (default) stops at the first problem: [Error e] with
    code {!Error.Csv_syntax}, {!Error.Unknown_column},
    {!Error.Missing_column}, {!Error.Csv_arity} or
    {!Error.Type_mismatch}; messages carry the 0-based data-row index and
    1-based source line. On success the report is [None].

    [~mode:`Quarantine] degrades gracefully and never fails: rows torn
    by a syntax error, rows of the wrong width, and rows with an
    ill-typed cell are dropped into the {!Quarantine.report} ([Some]
    only when something was actually quarantined); undeclared header
    columns are ignored and missing declared columns filled with NULL,
    each reported as a table-level entry. The surviving extension is
    what dependency discovery will run against. *)

val dump_table : ?header:bool -> Table.t -> string
(** Render a table's extension as CSV (header row by default). *)
