(** Minimal RFC-4180-style CSV reader/writer used to load and dump
    database extensions.

    Quoting rules: a field containing a comma, a double quote, or a
    newline is written quoted; embedded quotes are doubled. Empty fields
    load as NULL when typed through a {!Domain.t}.

    Reading is built on a streaming chunk-fed scanner ({!fold},
    {!fold_reader}): fields are sliced straight out of the input
    buffer, and the loaders type and dictionary-encode rows directly
    into a {!Column_store} as they stream past — no intermediate
    [string list list] and no eager tuple array (rows materialize
    lazily, see {!Table.create_deferred}).

    Every entry point comes in two flavors: strict (raises
    [Error.Error] with a positioned message) and lenient (drops the
    offending row and reports it, for quarantine-mode loading). *)

type syntax_error = {
  se_row : int;  (** 0-based index among all rows, header included *)
  se_line : int;  (** 1-based line where the offending quote opened *)
  se_col : int;  (** 1-based column of the offending quote *)
  se_message : string;
}

type row = {
  index : int;  (** 0-based index among all rows, header included *)
  line : int;  (** 1-based source line the row starts on *)
  fields : string array;
}

val fold :
  ?supervise:Supervise.t ->
  f:('a -> row -> 'a) ->
  init:'a ->
  string ->
  'a * syntax_error list
(** Stream every complete row of a CSV document through [f], in order,
    without building a row list. The only possible syntax error in this
    grammar — a quote left open at EOF — comes back in the error list
    (at most one), with the torn row dropped. [supervise] is polled
    once per 4096 emitted rows; a trip raises [Supervise.Interrupt]. *)

val fold_reader :
  ?supervise:Supervise.t ->
  f:('a -> row -> 'a) ->
  init:'a ->
  (unit -> string option) ->
  'a * syntax_error list
(** Like {!fold}, but pulls input as chunks from a reader ([None] means
    EOF). Chunk boundaries may fall anywhere, including inside quoted
    fields and [\r\n] pairs; row indices, lines and columns are
    identical to a single-string {!fold} of the concatenation. *)

val parse : string -> string list list
(** Parse a whole CSV document into rows of raw fields. Handles quoted
    fields with embedded separators, doubled quotes and [\r\n] line
    endings. A trailing newline does not produce an empty row.
    Raises [Error.Error] (code {!Error.Csv_syntax}) with the line/column
    of the opening quote on an unterminated quoted field. *)

val parse_lenient : string -> string list list * syntax_error list
(** Like {!parse} but never raises: a row torn by an unterminated quote
    is dropped and reported. *)

val render : string list list -> string
(** Inverse of {!parse} (up to quoting normalization). *)

val load :
  ?header:bool ->
  ?mode:[ `Strict | `Quarantine ] ->
  ?pool:Domain_pool.t ->
  ?supervise:Supervise.t ->
  ?min_parallel_bytes:int ->
  Relation.t ->
  string ->
  (Table.t * Quarantine.report option, Error.t) result
(** [load rel csv] builds a table for [rel] from CSV text. A tripped
    [supervise] token (polled per ingest chunk) comes back as [Error e]
    with code {!Error.Resource_exhausted}, never an exception. With
    [~header:true] (default) the first row names the columns and they may
    appear in any order; without a header the columns must follow the
    declared attribute order. Fields are parsed through each attribute's
    declared domain ({!Domain.parse}); attributes with domain [Unknown]
    use {!Value.parse}.

    The result is columnar-native: its memoized {!Column_store} is fully
    encoded when [load] returns, and tuples materialize only if
    {!Table.rows} is ever demanded.

    [~mode:`Strict] (default) stops at the first problem: [Error e] with
    code {!Error.Csv_syntax}, {!Error.Unknown_column},
    {!Error.Missing_column}, {!Error.Csv_arity} or
    {!Error.Type_mismatch}; messages carry the 0-based data-row index and
    1-based source line. On success the report is [None].

    [~mode:`Quarantine] degrades gracefully and never fails: rows torn
    by a syntax error, rows of the wrong width, and rows with an
    ill-typed cell are dropped into the {!Quarantine.report} ([Some]
    only when something was actually quarantined); undeclared header
    columns are ignored and missing declared columns filled with NULL,
    each reported as a table-level entry. The surviving extension is
    what dependency discovery will run against.

    With [~pool] (and at least [~min_parallel_bytes] of input, default
    64 KiB), the document is split at row boundaries and chunks are
    parsed, typed and dictionary-encoded concurrently with chunk-local
    dictionaries, merged afterwards by a code-remap sweep in input
    order. Errors, report contents and dictionaries are identical at
    every domain count; a pool of size 1 is the sequential path. *)

val load_file :
  ?header:bool ->
  ?mode:[ `Strict | `Quarantine ] ->
  ?pool:Domain_pool.t ->
  ?supervise:Supervise.t ->
  ?min_parallel_bytes:int ->
  Relation.t ->
  string ->
  (Table.t * Quarantine.report option, Error.t) result
(** {!load} fed from a file path. Without a pool the file streams
    through the scanner in fixed-size chunks and is never resident as a
    whole; with a pool it is read fully, then chunk-split. Open and
    read failures come back as [Error e] with code {!Error.Io_error}
    (never an exception). *)

val load_from_reader :
  ?header:bool ->
  ?mode:[ `Strict | `Quarantine ] ->
  ?supervise:Supervise.t ->
  Relation.t ->
  (unit -> string option) ->
  (Table.t * Quarantine.report option, Error.t) result
(** {!load} fed from a chunk reader ([None] means EOF) — the streaming
    back end of {!Source.Reader} extensions, where a live database
    cursor plugs in. Chunk boundaries may fall anywhere; the result is
    identical to {!load} of the concatenation. Always sequential (a
    reader has no random access to split on). A [Sys_error] escaping
    the reader comes back as [Error e] with code {!Error.Io_error}. *)

val load_reference :
  ?header:bool ->
  ?mode:[ `Strict | `Quarantine ] ->
  Relation.t ->
  string ->
  (Table.t * Quarantine.report option, Error.t) result
(** The seed row-at-a-time loader, kept verbatim as the equivalence
    oracle: the ingest test suite and bench B14 pin {!load} against it.
    Same contract as {!load}, minus parallelism and laziness. *)

val dump_table : ?header:bool -> Table.t -> string
(** Render a table's extension as CSV (header row by default). *)
