(* Cooperative supervision token: one latched "stop" cell shared by a
   run and everything it fans out.

   The pipeline's long passes (IND counting, FD sweeps, CSV ingest)
   poll the token at coarse boundaries — once per group, sweep or
   chunk, never per row — so an armed token costs one atomic load on
   the fast path and a clock/GC read only at those boundaries. The
   token is latched: the first tripped reason wins and every later
   poll returns it, so a batch that fans out over domains observes one
   consistent verdict.

   Determinism: [poll]/[check] are only ever called from sequential
   driver code (stage loops, batch submission points); pool tasks may
   read the latched flag ([tripped]) but never evaluate limits. The
   sequence of evaluation points is therefore identical whatever the
   domain count, which is what makes the fuel-tripped prefix tests
   (and budget-partial resume) reproducible. *)

type reason =
  | Cancelled
  | Deadline of { limit_s : float; elapsed_s : float }
  | Heap of { limit_words : int; live_words : int }

exception Interrupt of reason

type t = {
  flag : reason option Atomic.t;
  started : float;  (* wall clock at [create] *)
  deadline_s : float;  (* [infinity] = no deadline *)
  max_heap_words : int;  (* [max_int] = no heap budget *)
  fuel : int Atomic.t;
      (* deterministic trip: remaining [poll]s before the token cancels
         itself; [max_int] = off. Fault-injection/test hook. *)
  never : bool;  (* the shared unlimited token: polls are free, cancel is a no-op *)
}

let unlimited =
  {
    flag = Atomic.make None;
    started = 0.;
    deadline_s = infinity;
    max_heap_words = max_int;
    fuel = Atomic.make max_int;
    never = true;
  }

let create ?deadline_s ?max_heap_words ?fuel () =
  {
    flag = Atomic.make None;
    started = Unix.gettimeofday ();
    deadline_s =
      (match deadline_s with
      | Some d when d >= 0. -> d
      | Some _ -> 0.
      | None -> infinity);
    max_heap_words =
      (match max_heap_words with
      | Some w when w > 0 -> w
      | Some _ -> 1
      | None -> max_int);
    fuel = Atomic.make (match fuel with Some n -> max 0 n | None -> max_int);
    never = false;
  }

let active t = not t.never
let tripped t = Atomic.get t.flag

(* latch: first reason wins, whoever sets it *)
let trip t reason =
  if not t.never then
    ignore (Atomic.compare_and_set t.flag None (Some reason));
  Atomic.get t.flag

let cancel t = ignore (trip t Cancelled)

let poll t =
  if t.never then None
  else
    match Atomic.get t.flag with
    | Some _ as r -> r
    | None ->
        if Atomic.get t.fuel < max_int && Atomic.fetch_and_add t.fuel (-1) <= 1
        then trip t Cancelled
        else if t.deadline_s < infinity then begin
          let elapsed = Unix.gettimeofday () -. t.started in
          if elapsed > t.deadline_s then
            trip t (Deadline { limit_s = t.deadline_s; elapsed_s = elapsed })
          else if t.max_heap_words < max_int then begin
            let live = (Gc.quick_stat ()).Gc.heap_words in
            if live > t.max_heap_words then
              trip t (Heap { limit_words = t.max_heap_words; live_words = live })
            else None
          end
          else None
        end
        else if t.max_heap_words < max_int then begin
          let live = (Gc.quick_stat ()).Gc.heap_words in
          if live > t.max_heap_words then
            trip t (Heap { limit_words = t.max_heap_words; live_words = live })
          else None
        end
        else None

let check t =
  match poll t with None -> () | Some reason -> raise (Interrupt reason)

let reason_message = function
  | Cancelled -> "run cancelled"
  | Deadline { limit_s; elapsed_s } ->
      Printf.sprintf "deadline exceeded: %.3fs elapsed of a %.3fs budget"
        elapsed_s limit_s
  | Heap { limit_words; live_words } ->
      Printf.sprintf
        "heap budget exceeded: %d words live of a %d-word budget" live_words
        limit_words

let error_of ?stage reason =
  Error.make ?stage Error.Resource_exhausted (reason_message reason)

let () =
  Printexc.register_printer (function
    | Interrupt r -> Some ("Supervise.Interrupt: " ^ reason_message r)
    | _ -> None)
