open Relational

let holds_naive table (fd : Fd.t) =
  let lidx = Table.positions table fd.lhs in
  let ridx = Table.positions table fd.rhs in
  let seen = Hashtbl.create (max 16 (Table.cardinality table)) in
  try
    Array.iter
      (fun tup ->
        (* NULL-LHS rows carry no identifier: they never contradict *)
        if not (Tuple.has_null_at lidx tup) then begin
          let key = Tuple.project_list lidx tup in
          let rhs = Tuple.project_list ridx tup in
          match Hashtbl.find_opt seen key with
          | Some rhs0 -> if rhs0 <> rhs then raise Exit
          | None -> Hashtbl.add seen key rhs
        end)
      (Table.rows table);
    true
  with Exit -> false

let holds_partition table (fd : Fd.t) =
  let lidx = Table.positions table fd.lhs in
  let keep tup = not (Tuple.has_null_at lidx tup) in
  let p_lhs = Partition.of_table ~keep table fd.lhs in
  let p_both =
    Partition.of_table ~keep table (Attribute.Names.union fd.lhs fd.rhs)
  in
  Partition.fd_holds ~lhs:p_lhs ~lhs_rhs:p_both

let holds_columnar ?delta_fraction table (fd : Fd.t) =
  Column_store.fd_holds
    (Column_store.of_table ?delta_fraction table)
    ~lhs:fd.lhs ~rhs:fd.rhs

let holds ?(engine = Engine.default) table fd =
  match engine.Engine.check with
  | Engine.Naive -> holds_naive table fd
  | Engine.Partition -> holds_partition table fd
  | Engine.Columnar ->
      if Engine.cached engine then
        holds_columnar ~delta_fraction:engine.Engine.delta_fraction table fd
      else
        Column_store.fd_holds (Column_store.build table) ~lhs:fd.Fd.lhs
          ~rhs:fd.Fd.rhs

(* the batched check: all [lhs -> a] verdicts from one planner group
   (one partition pass under the columnar engines) instead of one
   independent scan per attribute. The LHS is normalized exactly as
   [Fd.make] normalizes it, so memoized verdicts are shared with
   single-FD [holds] calls. *)
let holds_all ?(engine = Engine.default) ?supervise table ~lhs ~rhs =
  let lhs = Attribute.Names.normalize lhs in
  Verify_plan.fd_group ~engine ?supervise table ~lhs ~rhs

let error_rate table (fd : Fd.t) =
  let n = Table.cardinality table in
  if n = 0 then 0.0
  else begin
    (* g3: n minus the size of a maximum consistent subset; for an FD the
       maximum subset keeps, per LHS value, the most frequent RHS value *)
    let lidx = Table.positions table fd.lhs in
    let ridx = Table.positions table fd.rhs in
    let per_lhs : (Value.t list, (Value.t list, int) Hashtbl.t) Hashtbl.t =
      Hashtbl.create 64
    in
    let nulls = ref 0 in
    Array.iter
      (fun tup ->
        if Tuple.has_null_at lidx tup then incr nulls
        else
        let key = Tuple.project_list lidx tup in
        let rhs = Tuple.project_list ridx tup in
        let inner =
          match Hashtbl.find_opt per_lhs key with
          | Some h -> h
          | None ->
              let h = Hashtbl.create 4 in
              Hashtbl.add per_lhs key h;
              h
        in
        Hashtbl.replace inner rhs
          (1 + Option.value ~default:0 (Hashtbl.find_opt inner rhs)))
      (Table.rows table);
    let kept =
      Hashtbl.fold
        (fun _ inner acc ->
          acc + Hashtbl.fold (fun _ c best -> max c best) inner 0)
        per_lhs 0
    in
    float_of_int (n - kept - !nulls) /. float_of_int n
  end

type stats = {
  candidates_tested : int;
  fds_found : int;
  exhausted : Supervise.reason option;
}

(* Supervision: the levelwise searches poll the token once per LHS
   candidate set (the unit of work between prunable states) and catch
   the trip at that boundary, returning the minimal FDs found so far
   with [stats.exhausted] naming the tripped budget — a typed partial,
   never an exception. *)

let discover ?(max_lhs = 3) ?(supervise = Supervise.unlimited) ~rel table =
  let attrs = (Table.schema table).Relation.attrs in
  let tested = ref 0 in
  let found : Fd.t list ref = ref [] in
  (* minimal-LHS bookkeeping: per RHS attribute, the LHSes already found *)
  let minimal_lhs : (string, string list list) Hashtbl.t = Hashtbl.create 16 in
  let covered_by_smaller rhs lhs =
    match Hashtbl.find_opt minimal_lhs rhs with
    | None -> false
    | Some ls -> List.exists (fun l -> Attribute.Names.subset l lhs) ls
  in
  (* key pruning: once an LHS is a key (unique), every FD from it holds
     trivially and no superset is minimal *)
  let keys : string list list ref = ref [] in
  let superset_of_key lhs =
    List.exists (fun k -> Attribute.Names.subset k lhs) !keys
  in
  let arr = Array.of_list attrs in
  let n = Array.length arr in
  let max_lhs = min max_lhs n in
  let exhausted = ref None in
  (try
  for size = 1 to max_lhs do
    let rec choose start acc count =
      if count = 0 then begin
        Supervise.check supervise;
        let lhs = Attribute.Names.normalize acc in
        if not (superset_of_key lhs) then begin
          if Table.count_distinct table lhs = Table.cardinality table then
            (* unique: record as key, emit FDs to all remaining attrs *)
            keys := lhs :: !keys;
          List.iter
            (fun a ->
              if (not (Attribute.Names.mem a lhs)) && not (covered_by_smaller a lhs)
              then begin
                incr tested;
                let fd = Fd.make rel lhs [ a ] in
                if holds_naive table fd then begin
                  found := fd :: !found;
                  Hashtbl.replace minimal_lhs a
                    (lhs
                    :: Option.value ~default:[]
                         (Hashtbl.find_opt minimal_lhs a))
                end
              end)
            attrs
        end
      end
      else
        for i = start to n - count do
          choose (i + 1) (arr.(i) :: acc) (count - 1)
        done
    in
    choose 0 [] size
  done
  with Supervise.Interrupt r -> exhausted := Some r);
  let fds = Fd.combine (List.rev !found) in
  ( fds,
    {
      candidates_tested = !tested;
      fds_found = List.length !found;
      exhausted = !exhausted;
    } )

let discover_tane ?(max_lhs = 3) ?(supervise = Supervise.unlimited) ~rel table =
  let attrs = (Table.schema table).Relation.attrs in
  let arr = Array.of_list (Attribute.Names.normalize attrs) in
  let n = Array.length arr in
  let max_lhs = min max_lhs n in
  (* memoized stripped partitions keyed by canonical attribute sets *)
  let partitions : (string list, Partition.t) Hashtbl.t = Hashtbl.create 64 in
  let rec partition_of set =
    match Hashtbl.find_opt partitions set with
    | Some p -> p
    | None ->
        let p =
          match set with
          | [] -> invalid_arg "discover_tane: empty attribute set"
          | [ a ] -> Partition.of_table table [ a ]
          | a :: rest -> Partition.product (partition_of [ a ]) (partition_of rest)
        in
        Hashtbl.add partitions set p;
        p
  in
  let tested = ref 0 in
  let found : Fd.t list ref = ref [] in
  let minimal_lhs : (string, string list list) Hashtbl.t = Hashtbl.create 16 in
  let covered_by_smaller rhs lhs =
    match Hashtbl.find_opt minimal_lhs rhs with
    | None -> false
    | Some ls -> List.exists (fun l -> Attribute.Names.subset l lhs) ls
  in
  let keys : string list list ref = ref [] in
  let superset_of_key set =
    List.exists (fun k -> Attribute.Names.subset k set) !keys
  in
  let cardinality = Table.cardinality table in
  (* iterate LHS candidates by size, exactly as [discover] does, but test
     through partitions: X -> a holds iff e(π_X) = e(π_{X∪a}) *)
  let exhausted = ref None in
  (try
  for size = 1 to max_lhs do
    let rec choose start acc count =
      if count = 0 then begin
        Supervise.check supervise;
        let lhs = Attribute.Names.normalize acc in
        if not (superset_of_key lhs) then begin
          let p_lhs = partition_of lhs in
          if Partition.rank p_lhs = cardinality then keys := lhs :: !keys;
          List.iter
            (fun a ->
              if
                (not (Attribute.Names.mem a lhs))
                && not (covered_by_smaller a lhs)
              then begin
                incr tested;
                let p_both = partition_of (Attribute.Names.union lhs [ a ]) in
                if Partition.fd_holds ~lhs:p_lhs ~lhs_rhs:p_both then begin
                  found := Fd.make rel lhs [ a ] :: !found;
                  Hashtbl.replace minimal_lhs a
                    (lhs
                    :: Option.value ~default:[]
                         (Hashtbl.find_opt minimal_lhs a))
                end
              end)
            attrs
        end
      end
      else
        for i = start to n - count do
          choose (i + 1) (arr.(i) :: acc) (count - 1)
        done
    in
    choose 0 [] size
  done
  with Supervise.Interrupt r -> exhausted := Some r);
  let fds = Fd.combine (List.rev !found) in
  ( fds,
    {
      candidates_tested = !tested;
      fds_found = List.length !found;
      exhausted = !exhausted;
    } )

let discover_for_lhs ?engine ?supervise ~rel table lhs =
  let attrs = (Table.schema table).Relation.attrs in
  let candidates = List.filter (fun a -> not (List.mem a lhs)) attrs in
  let rhs =
    List.filter_map
      (fun (a, ok) -> if ok then Some a else None)
      (holds_all ?engine ?supervise table ~lhs ~rhs:candidates)
  in
  if rhs = [] then None else Some (Fd.make rel lhs rhs)
