(** Candidate-key discovery from data.

    The paper assumes [K] can be read from the data dictionary (§4), but
    many legacy systems predate [UNIQUE] declarations. This module
    recovers the {e candidate} keys of a relation from its extension so
    an expert can confirm them before the pipeline runs: a levelwise
    search for minimal attribute sets whose (NULL-free) projection is
    duplicate-free, with superset pruning.

    A data-derived key is only a presumption — the extension is one
    witness, not a proof — which is why the result feeds an expert, not
    the algorithms directly. *)

open Relational

type stats = { sets_tested : int; keys_found : int }

val unique_over : ?engine:Engine.t -> Table.t -> string list -> bool
(** SQL UNIQUE over the extension. Columnar engines (the default)
    answer from the memoized column store — repeated probes of the same
    levelwise search share dictionaries and witness counts. *)

val minimal_unique_sets :
  ?engine:Engine.t -> ?max_size:int -> Table.t -> string list list * stats
(** All minimal attribute sets (size ≤ [max_size], default 3) that are
    unique over the extension, in SQL semantics: rows with a NULL in the
    set are skipped by the uniqueness check, but a set whose projection
    is NULL in {e every} row is not reported. Sets are canonical; the
    result is sorted by size then lexicographically. An empty table has
    no keys. Supersets of a found key are pruned, not tested. *)

val suggest :
  ?engine:Engine.t ->
  ?max_size:int ->
  Database.t ->
  (string * string list list) list
(** Per relation of the database, the discovered minimal unique sets —
    only for relations with {e no} declared unique constraint (declared
    keys need no suggestion). *)

val apply_suggestions :
  ?engine:Engine.t ->
  ?max_size:int ->
  confirm:(string -> string list -> bool) ->
  Database.t ->
  int
(** For each suggestion accepted by [confirm rel attrs], declare the
    unique constraint on the relation (in place). Returns the number of
    constraints added. This is the expert-confirmed preamble for
    databases whose dictionary lacks key declarations. *)
