(** Functional-dependency inference from data.

    Two single-FD check engines (naive hashing and stripped partitions),
    plus a full levelwise discovery of all minimal FDs in the spirit of
    Mannila–Räihä [12] / TANE — the {e exhaustive baseline} the paper's
    query-guided elicitation is compared against (experiment B4). *)

open Relational

val holds_naive : Table.t -> Fd.t -> bool
(** Hash LHS projections, compare RHS projections within each bucket.
    One pass; NULL groups with NULL. *)

val holds_partition : Table.t -> Fd.t -> bool
(** The TANE criterion [e(X) = e(X ∪ Y)] over stripped partitions. *)

val holds_columnar : ?delta_fraction:float -> Table.t -> Fd.t -> bool
(** Check against the table's memoized {!Column_store}: the stripped
    LHS partition and the verdict itself are cached, so repeated checks
    after the first are O(1) until the table changes — after which the
    store delta-refreshes itself (within [delta_fraction], see
    {!Column_store.of_table}) instead of rebuilding. *)

val holds : ?engine:Engine.t -> Table.t -> Fd.t -> bool
(** Dispatch on [engine.check] ({!Engine.default} — columnar with
    shared caches — when omitted); [engine.cache = Cache_off] makes the
    columnar path build a throwaway store. *)

val holds_all :
  ?engine:Engine.t ->
  ?supervise:Supervise.t ->
  Table.t ->
  lhs:string list ->
  rhs:string list ->
  (string * bool) list
(** Batched check of every [lhs -> a] for [a] in [rhs], in order,
    through {!Relational.Verify_plan.fd_group}: under the partition and
    columnar engines the LHS partition is refined once per attribute
    instead of scanned per candidate, and independent sweeps fan out
    over the engine's {!Relational.Domain_pool}. Verdicts are identical
    to per-candidate {!holds} calls (engine-equivalence contract).
    [supervise] is threaded to the planner, which polls it at sweep
    granularity; a trip raises [Supervise.Interrupt]. *)

val error_rate : Table.t -> Fd.t -> float
(** Fraction of rows that must be removed for the FD to hold
    ([g3] error measure): 0 when it holds. *)

type stats = {
  candidates_tested : int;
  fds_found : int;
  exhausted : Supervise.reason option;
      (** [Some r] when a supervision budget tripped mid-search and the
          FDs returned are the (still-minimal) prefix found before the
          trip; [None] on a complete search. *)
}

val discover :
  ?max_lhs:int ->
  ?supervise:Supervise.t ->
  rel:string ->
  Table.t ->
  Fd.t list * stats
(** All minimal FDs [X -> a] with [|X| ≤ max_lhs] (default 3) satisfied
    by the table, found levelwise with candidate pruning: supersets of a
    found LHS are not tested for the same RHS, and key LHSes prune all
    larger candidates. Returns the FDs (combined by LHS) and search
    statistics. Exponential in arity — the point of the baseline.

    [supervise] is polled once per LHS candidate set; a trip ends the
    search at that boundary and the FDs found so far come back with
    [stats.exhausted] naming the tripped budget (no exception
    escapes). *)

val discover_tane :
  ?max_lhs:int ->
  ?supervise:Supervise.t ->
  rel:string ->
  Table.t ->
  Fd.t list * stats
(** Same contract as {!discover} (all minimal FDs with [|X| ≤ max_lhs]),
    but every satisfaction test goes through {e memoized stripped
    partitions}: [π_X] is computed once per attribute set by
    {!Partition.product} over smaller sets and reused by every candidate
    that mentions it. Per-check this is slower than hashing (B3), but
    across a full levelwise search the partitions amortize — the
    trade-off TANE exploits.

    NULL caveat: partition products cannot express the per-candidate
    "skip rows with a NULL left-hand side" exemption, so this engine
    treats NULL as an ordinary value throughout (both for grouping and
    for right-hand-side comparison). On NULL-free extensions it returns
    exactly {!discover}'s output (property-tested); on extensions with
    nullable identifiers prefer {!discover}. *)

val discover_for_lhs :
  ?engine:Engine.t ->
  ?supervise:Supervise.t ->
  rel:string ->
  Table.t ->
  string list ->
  Fd.t option
(** Maximal RHS functionally determined by the given LHS (excluding the
    LHS itself); [None] when nothing besides the LHS is determined.
    This is the primitive RHS-Discovery (§6.2.2) calls per candidate —
    answered as one {!holds_all} batch over the non-LHS attributes. *)
