open Relational

type stats = { sets_tested : int; keys_found : int }

let unique_over_rows table attrs =
  (* SQL semantics: NULL-holding rows skipped; require at least one
     non-null witness *)
  let idx = Table.positions table attrs in
  let seen = Hashtbl.create (max 16 (Table.cardinality table)) in
  let witnesses = ref 0 in
  try
    Array.iter
      (fun tup ->
        if not (Tuple.has_null_at idx tup) then begin
          incr witnesses;
          let key = Tuple.project_list idx tup in
          if Hashtbl.mem seen key then raise Exit else Hashtbl.add seen key ()
        end)
      (Table.rows table);
    !witnesses > 0
  with Exit -> false

let unique_over ?(engine = Engine.default) table attrs =
  match engine.Engine.check with
  | Engine.Naive | Engine.Partition -> unique_over_rows table attrs
  | Engine.Columnar ->
      let store =
        if Engine.cached engine then Column_store.of_table table
        else Column_store.build table
      in
      Column_store.unique store attrs

let minimal_unique_sets ?engine ?(max_size = 3) table =
  let attrs = Array.of_list (Table.schema table).Relation.attrs in
  let n = Array.length attrs in
  let max_size = min max_size n in
  let found = ref [] and tested = ref 0 in
  let superset_of_key set =
    List.exists (fun k -> Attribute.Names.subset k set) !found
  in
  if Table.cardinality table > 0 then
    for size = 1 to max_size do
      let rec choose start acc count =
        if count = 0 then begin
          let set = Attribute.Names.normalize acc in
          if not (superset_of_key set) then begin
            incr tested;
            if unique_over ?engine table set then found := set :: !found
          end
        end
        else
          for i = start to n - count do
            choose (i + 1) (attrs.(i) :: acc) (count - 1)
          done
      in
      choose 0 [] size
    done;
  let keys =
    List.sort
      (fun a b ->
        match Int.compare (List.length a) (List.length b) with
        | 0 -> Attribute.Names.compare a b
        | c -> c)
      !found
  in
  (keys, { sets_tested = !tested; keys_found = List.length keys })

let suggest ?engine ?max_size db =
  List.filter_map
    (fun rel ->
      if rel.Relation.uniques <> [] then None
      else
        let keys, _ =
          minimal_unique_sets ?engine ?max_size
            (Database.table db rel.Relation.name)
        in
        if keys = [] then None else Some (rel.Relation.name, keys))
    (Schema.relations (Database.schema db))

let apply_suggestions ?engine ?max_size ~confirm db =
  let added = ref 0 in
  List.iter
    (fun (rel_name, keys) ->
      List.iter
        (fun key ->
          if confirm rel_name key then begin
            let table = Database.table db rel_name in
            let updated = Relation.add_unique (Table.schema table) key in
            (* constraint-only schema update: share the backing storage
               and the encoded column store instead of an O(n) rebuild *)
            Database.replace_table db (Table.with_schema table updated);
            incr added
          end)
        keys)
    (suggest ?engine ?max_size db);
  !added
