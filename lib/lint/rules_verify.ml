open Relational
open Deps

let diag = Diagnostic.make

let l201 (r : Dbre.Pipeline.result) =
  List.filter_map
    (fun (rel, nf) ->
      match nf with
      | Normal_forms.Nf3 | Normal_forms.Bcnf -> None
      | (Normal_forms.Nf1 | Normal_forms.Nf2) as nf ->
          Some
            (diag ~code:"L201" Diagnostic.Error
               (Printf.sprintf
                  "post-Restruct relation %s is only in %s: the elicited \
                   FDs still violate 3NF"
                  rel
                  (Normal_forms.nf_to_string nf))))
    (Dbre.Pipeline.nf_report r)

let l202 (r : Dbre.Pipeline.result) =
  let schema = r.restruct_result.Dbre.Restruct.schema in
  List.filter_map
    (fun ind ->
      if Ind.key_based schema ind then None
      else
        Some
          (diag ~code:"L202" Diagnostic.Error
             (Printf.sprintf
                "RIC %s: the right-hand side is not a declared key of %s"
                (Ind.to_string ind) ind.Ind.rhs_rel)))
    r.restruct_result.Dbre.Restruct.ric

let l203 (r : Dbre.Pipeline.result) =
  let schema = r.restruct_result.Dbre.Restruct.schema in
  let side_problem rel attrs =
    match Schema.find schema rel with
    | None -> Some (Printf.sprintf "relation %s is not in the schema" rel)
    | Some rl -> (
        match
          List.filter (fun a -> not (Relation.has_attr rl a)) attrs
        with
        | [] -> None
        | missing ->
            Some
              (Printf.sprintf "%s has no attribute %s" rel
                 (String.concat ", " missing)))
  in
  List.filter_map
    (fun (ind : Ind.t) ->
      let problem =
        match side_problem ind.Ind.lhs_rel ind.Ind.lhs_attrs with
        | Some p -> Some p
        | None -> side_problem ind.Ind.rhs_rel ind.Ind.rhs_attrs
      in
      Option.map
        (fun p ->
          diag ~code:"L203" Diagnostic.Error
            (Printf.sprintf "dangling IND after Rewrite: %s (%s)"
               (Ind.to_string ind) p))
        problem)
    r.restruct_result.Dbre.Restruct.inds

let l204 (r : Dbre.Pipeline.result) =
  match Er.Validate.check r.translate_result.Dbre.Translate.eer with
  | Ok () -> []
  | Error msgs ->
      List.map
        (fun m ->
          diag ~code:"L204" Diagnostic.Error
            (Printf.sprintf "EER schema ill-formed: %s" m))
        msgs

let l205 (r : Dbre.Pipeline.result) =
  let eer = r.translate_result.Dbre.Translate.eer in
  List.concat_map
    (fun (rel : Er.Eer.relationship) ->
      let empty_roles =
        List.filter_map
          (fun (role : Er.Eer.role) ->
            if role.Er.Eer.role_attrs = [] then
              Some
                (diag ~code:"L205" Diagnostic.Error
                   (Printf.sprintf
                      "relationship %s: role of %s is realized by no \
                       attributes"
                      rel.Er.Eer.r_name role.Er.Eer.role_entity))
            else None)
          rel.Er.Eer.r_roles
      in
      let cards =
        List.map (fun (role : Er.Eer.role) -> role.Er.Eer.role_card)
          rel.Er.Eer.r_roles
      in
      let partial =
        if
          List.exists Option.is_some cards && List.exists Option.is_none cards
        then
          [
            diag ~code:"L205" Diagnostic.Warning
              (Printf.sprintf
                 "relationship %s: cardinalities inferred for only some \
                  legs"
                 rel.Er.Eer.r_name);
          ]
        else []
      in
      empty_roles @ partial)
    eer.Er.Eer.relationships

let l206 (r : Dbre.Pipeline.result) =
  let budget = function
    | Some reason -> Supervise.reason_message reason
    | None -> "a supervision budget"
  in
  let ind =
    match r.ind_result.Dbre.Ind_discovery.unverified with
    | [] -> []
    | unverified ->
        [
          diag ~code:"L206" Diagnostic.Warning
            (Printf.sprintf
               "IND-Discovery is partial: %s tripped and %d equi-join(s) \
                were never verified — the elicited INDs (and everything \
                derived from them) may be incomplete; resume from the \
                stage checkpoint to finish"
               (budget r.ind_result.Dbre.Ind_discovery.exhausted)
               (List.length unverified));
        ]
  in
  let rhs =
    match r.rhs_result.Dbre.Rhs_discovery.unverified with
    | [] -> []
    | unverified ->
        [
          diag ~code:"L206" Diagnostic.Warning
            (Printf.sprintf
               "RHS-Discovery is partial: %s tripped and %d candidate(s) \
                were never tested — the elicited FDs (and the 3NF \
                restructuring) may be incomplete; resume from the stage \
                checkpoint to finish"
               (budget r.rhs_result.Dbre.Rhs_discovery.exhausted)
               (List.length unverified));
        ]
  in
  ind @ rhs

let check_result r = l201 r @ l202 r @ l203 r @ l204 r @ l205 r @ l206 r

(* L207 — pre-run check of a job's sources against its DDL: every
   source must target a declared relation, and where a source's shape
   is observable without loading it (an in-memory table's relation, a
   CSV document's first record when unquoted) it must agree with the
   declared arity. Warnings, not errors: the daemon surfaces them over
   the protocol before the run, and the run itself still fails with a
   precise typed error if the disagreement is real. *)

(* width of the first CSV record, when it can be read cheaply and
   unambiguously: None for readers (probing consumes them), missing
   files, empty documents, or records using quotes (a quoted comma
   would make the naive count wrong) *)
let first_record_width (source : Source.t) =
  let width_of_text text =
    let line =
      match String.index_opt text '\n' with
      | Some i -> String.sub text 0 i
      | None -> text
    in
    let line =
      if String.length line > 0 && line.[String.length line - 1] = '\r' then
        String.sub line 0 (String.length line - 1)
      else line
    in
    if line = "" || String.contains line '"' then None
    else
      Some
        (1
        + String.fold_left
            (fun n c -> if c = ',' then n + 1 else n)
            0 line)
  in
  match source with
  | Source.Csv_inline text -> width_of_text text
  | Source.Csv_file path -> (
      match open_in_bin path with
      | exception Sys_error _ -> None
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              match input_line ic with
              | line -> width_of_text line
              | exception End_of_file -> None))
  | Source.In_memory _ | Source.Reader _ -> None

let check_job (spec : Dbre.Job_spec.t) =
  match Sqlx.Ddl.schema_of_script spec.Dbre.Job_spec.ddl with
  | exception Sqlx.Parser.Error _ -> []
  | schema, _fks ->
      List.filter_map
        (fun (name, source) ->
          match Schema.find schema name with
          | None ->
              Some
                (diag ~code:"L207" Diagnostic.Warning
                   (Printf.sprintf
                      "job source %s targets relation %s, which the DDL does \
                       not declare"
                      (Source.describe source) name))
          | Some rel -> (
              let arity = List.length rel.Relation.attrs in
              match source with
              | Source.In_memory table ->
                  let have = Table.schema table in
                  if
                    String.equal have.Relation.name rel.Relation.name
                    && have.Relation.attrs = rel.Relation.attrs
                  then None
                  else
                    Some
                      (diag ~code:"L207" Diagnostic.Warning
                         (Printf.sprintf
                            "job source for %s is an in-memory table \
                             declaring %s(%s), but the DDL declares %s(%s)"
                            name have.Relation.name
                            (String.concat ", " have.Relation.attrs)
                            rel.Relation.name
                            (String.concat ", " rel.Relation.attrs)))
              | Source.Csv_file path when not (Sys.file_exists path) ->
                  Some
                    (diag ~code:"L207" Diagnostic.Warning
                       (Printf.sprintf
                          "job source for %s names a missing file %s" name
                          path))
              | _ -> (
                  match first_record_width source with
                  | Some w when w <> arity ->
                      Some
                        (diag ~code:"L207" Diagnostic.Warning
                           (Printf.sprintf
                              "job source for %s has %d-field records, but \
                               the DDL declares %d attributes"
                              name w arity))
                  | _ -> None)))
        spec.Dbre.Job_spec.sources
