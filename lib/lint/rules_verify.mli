(** Verification rules ([L2xx]) over pipeline artifacts.

    These re-check the §7 postconditions on a completed pipeline run —
    the "trust but verify" pass a reverse engineer wants before handing
    the conceptual schema to a migration project:

    - [L201] (error) — a post-Restruct relation is not in 3NF against
      the elicited FDs plus its key FDs.
    - [L202] (error) — a constraint in [RIC] whose right-hand side is
      not a declared key of its relation.
    - [L203] (error) — a dangling IND after rewriting: a side names a
      relation or attribute the restructured schema does not declare.
    - [L204] (error) — the EER schema is ill-formed
      ({!Er.Validate.check} fails).
    - [L205] (error/warning) — malformed relationship cardinalities: a
      role realized by no attributes (error), or a relationship where
      cardinality inference annotated only some legs (warning).
    - [L206] (warning) — a discovery stage degraded under a supervision
      budget: the result carries an [unverified] set, so the elicited
      dependencies (and everything derived from them) may be
      incomplete. The message names the budget that tripped
      (deadline/heap/cancellation) and points at the stage-checkpoint
      resume path. *)

val check_result : Dbre.Pipeline.result -> Diagnostic.t list
(** All verification rules over a completed run. Diagnostics carry no
    spans (artifacts have no source text); the relation/constraint is
    named in the message. *)

val check_job : Dbre.Job_spec.t -> Diagnostic.t list
(** [L207] (warning) — pre-run check that a job's sources agree with
    its DDL: a source targeting an undeclared relation, an in-memory
    table whose relation disagrees with the declaration, a source file
    that does not exist, or a CSV source whose first record's width
    (when observable without quotes) differs from the declared arity.
    The analysis daemon runs this at submission and streams the
    findings to the client before the job starts. *)
