open Relational
open Sqlx

let diag = Diagnostic.make

(* one FROM entry; scope ids keep self-join instances distinct *)
type entry = { e_alias : string; e_rel : string; e_span : Span.t; e_scope : int }

type ctx = {
  schema : Schema.t;
  source_name : string option;
  mutable scope_ctr : int;
  mutable diags : Diagnostic.t list;
  mutable edges : ((int * string) * (int * string)) list;
      (* equality predicates between FROM instances, for connectivity *)
  mutable multi_frames : entry list list;  (* frames with >= 2 entries *)
  mutable rels_seen : string list;  (* known relations the statement uses *)
  mutable first_span : Span.t;  (* anchor for statement-level findings *)
}

let add ctx d = ctx.diags <- d :: ctx.diags

let fresh ctx =
  let s = ctx.scope_ctr in
  ctx.scope_ctr <- s + 1;
  s

let known ctx rel = Schema.mem ctx.schema rel

let rel_has ctx rel a =
  match Schema.find ctx.schema rel with
  | Some r -> Relation.has_attr r a
  | None -> false

let note_rel ctx span rel =
  if known ctx rel && not (List.mem rel ctx.rels_seen) then
    ctx.rels_seen <- rel :: ctx.rels_seen;
  if Span.is_dummy ctx.first_span then ctx.first_span <- span

let entries_of_from ctx (from : Ast.table_ref list) =
  let scope = fresh ctx in
  List.map
    (fun (r : Ast.table_ref) ->
      note_rel ctx r.t_span r.rel;
      {
        e_alias = Option.value ~default:r.rel r.alias;
        e_rel = r.rel;
        e_span = r.t_span;
        e_scope = scope;
      })
    from

let qualify c =
  match c.Ast.tbl with
  | Some t -> t ^ "." ^ c.Ast.col
  | None -> c.Ast.col

(* ---------------------------------------------------------------- *)
(* FROM-clause checks: L101, L104                                     *)
(* ---------------------------------------------------------------- *)

let check_frame ctx (outer : entry list list) (frame : entry list) =
  List.iter
    (fun e ->
      if not (known ctx e.e_rel) then
        add ctx
          (diag ?source_name:ctx.source_name ~span:e.e_span ~code:"L101"
             Diagnostic.Error
             (Printf.sprintf
                "unknown table %s: the dictionary declares no such relation"
                e.e_rel)))
    frame;
  ignore
    (List.fold_left
       (fun seen e ->
         if List.mem e.e_alias seen then
           add ctx
             (diag ?source_name:ctx.source_name ~span:e.e_span ~code:"L104"
                Diagnostic.Warning
                (Printf.sprintf
                   "duplicate FROM entry %s: this instance shadows the \
                    earlier one, making references through it ambiguous"
                   e.e_alias));
         e.e_alias :: seen)
       [] frame);
  List.iter
    (fun e ->
      if
        List.exists
          (fun f -> List.exists (fun o -> o.e_alias = e.e_alias) f)
          outer
      then
        add ctx
          (diag ?source_name:ctx.source_name ~span:e.e_span ~code:"L104"
             Diagnostic.Info
             (Printf.sprintf
                "FROM entry %s shadows an entry of an enclosing query: \
                 correlated references now bind to the inner instance"
                e.e_alias)))
    frame

(* ---------------------------------------------------------------- *)
(* Column resolution: L102, L103                                      *)
(* ---------------------------------------------------------------- *)

type resolution =
  | Rok of entry
  | Rsuppressed  (** an unknown relation in scope may own the column *)
  | Runknown_qual
  | Rnocol of entry option  (** qualified miss carries the entry *)
  | Rambig of entry list

let resolve ctx (frames : entry list list) (c : Ast.column) =
  match c.Ast.tbl with
  | Some q ->
      let rec search = function
        | [] -> Runknown_qual
        | f :: rest -> (
            match List.find_opt (fun e -> e.e_alias = q) f with
            | Some e ->
                if not (known ctx e.e_rel) then Rsuppressed
                else if rel_has ctx e.e_rel c.Ast.col then Rok e
                else Rnocol (Some e)
            | None -> search rest)
      in
      search frames
  | None ->
      let any_unknown =
        List.exists
          (fun f -> List.exists (fun e -> not (known ctx e.e_rel)) f)
          frames
      in
      let rec search = function
        | [] -> if any_unknown then Rsuppressed else Rnocol None
        | f :: rest -> (
            match List.filter (fun e -> rel_has ctx e.e_rel c.Ast.col) f with
            | [ e ] -> Rok e
            | [] -> search rest
            | hits -> Rambig hits)
      in
      search frames

let check_column ctx frames (c : Ast.column) =
  let r = resolve ctx frames c in
  (match r with
  | Rok _ | Rsuppressed -> ()
  | Runknown_qual ->
      add ctx
        (diag ?source_name:ctx.source_name ~span:c.Ast.c_span ~code:"L102"
           Diagnostic.Error
           (Printf.sprintf
              "unknown table or alias %s qualifying column %s"
              (Option.get c.Ast.tbl) (qualify c)))
  | Rnocol (Some e) ->
      add ctx
        (diag ?source_name:ctx.source_name ~span:c.Ast.c_span ~code:"L102"
           Diagnostic.Error
           (Printf.sprintf "relation %s has no attribute %s" e.e_rel
              c.Ast.col))
  | Rnocol None ->
      add ctx
        (diag ?source_name:ctx.source_name ~span:c.Ast.c_span ~code:"L102"
           Diagnostic.Error
           (Printf.sprintf "no relation in scope provides attribute %s"
              c.Ast.col))
  | Rambig hits ->
      add ctx
        (diag ?source_name:ctx.source_name ~span:c.Ast.c_span ~code:"L103"
           Diagnostic.Warning
           (Printf.sprintf
              "ambiguous column %s (provided by %s): elicitation drops \
               predicates it cannot resolve — qualify the reference"
              c.Ast.col
              (String.concat ", "
                 (List.map (fun e -> e.e_alias) hits)))));
  r

(* ---------------------------------------------------------------- *)
(* Traversal                                                          *)
(* ---------------------------------------------------------------- *)

let node e = (e.e_scope, e.e_alias)

let edge ctx a b =
  match (a, b) with
  | Rok ea, Rok eb when node ea <> node eb ->
      ctx.edges <- (node ea, node eb) :: ctx.edges
  | _ -> ()

let rec walk_expr ctx frames = function
  | Ast.Col c -> ignore (check_column ctx frames c)
  | Ast.Lit _ | Ast.Host _ -> ()
  | Ast.Agg_of a -> walk_agg ctx frames a

and walk_agg ctx frames = function
  | Ast.Count_star -> ()
  | Ast.Count (_, c) | Ast.Sum c | Ast.Avg c | Ast.Min c | Ast.Max c ->
      ignore (check_column ctx frames c)

and walk_cond ctx frames (cond : Ast.cond) =
  match cond with
  | Ast.Cmp (Ast.Eq, Ast.Col c1, Ast.Col c2) ->
      let r1 = check_column ctx frames c1 in
      let r2 = check_column ctx frames c2 in
      edge ctx r1 r2
  | Ast.Cmp (_, e1, e2) ->
      walk_expr ctx frames e1;
      walk_expr ctx frames e2
  | Ast.And (c1, c2) | Ast.Or (c1, c2) ->
      walk_cond ctx frames c1;
      walk_cond ctx frames c2
  | Ast.Not c -> walk_cond ctx frames c
  | Ast.In (e, q) ->
      walk_expr ctx frames e;
      (* x IN (SELECT y FROM …) links x's instance to y's *)
      let sub_edge =
        match (e, q) with
        | Ast.Col c, Ast.Select sub -> (
            match sub.Ast.projections with
            | [ Ast.Proj (Ast.Col proj, _) ] ->
                Some (resolve ctx frames c, sub, proj)
            | _ -> None)
        | _ -> None
      in
      (match sub_edge with
      | Some (outer_res, sub, proj) ->
          (* walk the subquery once, then resolve the projection against
             the frame the walk just used — rebuild it deterministically *)
          let frame = walk_select ctx frames sub in
          edge ctx outer_res (resolve ctx (frame :: frames) proj)
      | None -> walk_query ctx frames q)
  | Ast.In_list (e, es) ->
      walk_expr ctx frames e;
      List.iter (walk_expr ctx frames) es
  | Ast.Exists q -> walk_query ctx frames q
  | Ast.Between (e1, e2, e3) ->
      walk_expr ctx frames e1;
      walk_expr ctx frames e2;
      walk_expr ctx frames e3
  | Ast.Like (e, _) | Ast.Is_null (e, _) -> walk_expr ctx frames e

and walk_query ctx frames (q : Ast.query) =
  match q with
  | Ast.Select s -> ignore (walk_select ctx frames s)
  | Ast.Union (q1, q2) | Ast.Intersect (q1, q2) | Ast.Except (q1, q2) ->
      walk_query ctx frames q1;
      walk_query ctx frames q2

and walk_select ctx outer (s : Ast.select) =
  let frame = entries_of_from ctx s.Ast.from in
  check_frame ctx outer frame;
  let frames = frame :: outer in
  List.iter
    (function
      | Ast.Star -> ()
      | Ast.Proj (e, _) -> walk_expr ctx frames e
      | Ast.Agg (a, _) -> walk_agg ctx frames a)
    s.Ast.projections;
  Option.iter (walk_cond ctx frames) s.Ast.where;
  List.iter (fun c -> ignore (check_column ctx frames c)) s.Ast.group_by;
  Option.iter (walk_cond ctx frames) s.Ast.having;
  List.iter
    (fun (c, _) -> ignore (check_column ctx frames c))
    s.Ast.order_by;
  if List.length frame >= 2 then ctx.multi_frames <- frame :: ctx.multi_frames;
  frame

(* ---------------------------------------------------------------- *)
(* Statement-level rules: L105, L106, L107                            *)
(* ---------------------------------------------------------------- *)

let l106 ctx =
  let parent = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | Some p when p <> x ->
        let r = find p in
        Hashtbl.replace parent x r;
        r
    | _ -> x
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  List.iter (fun (a, b) -> union a b) ctx.edges;
  List.iter
    (fun frame ->
      if List.for_all (fun e -> known ctx e.e_rel) frame then begin
        let roots =
          List.sort_uniq Stdlib.compare (List.map (fun e -> find (node e)) frame)
        in
        if List.length roots > 1 then
          let span =
            List.fold_left (fun sp e -> Span.join sp e.e_span) Span.dummy frame
          in
          add ctx
            (diag ?source_name:ctx.source_name ~span ~code:"L106"
               Diagnostic.Warning
               (Printf.sprintf
                  "cartesian product: FROM entries %s are not all \
                   connected by equality predicates (%d disconnected \
                   groups)"
                  (String.concat ", " (List.map (fun e -> e.e_alias) frame))
                  (List.length roots)))
      end)
    ctx.multi_frames

let l105 ctx stmt =
  List.iter
    (fun ((a : Equijoin.resolved_col), (b : Equijoin.resolved_col)) ->
      let dom (rc : Equijoin.resolved_col) =
        match Schema.find ctx.schema rc.rc_rel with
        | Some r when Relation.has_attr r rc.rc_attr ->
            Relation.domain_of r rc.rc_attr
        | _ -> Domain.Unknown
      in
      let da = dom a and db = dom b in
      if not (Domain.compatible da db) then
        add ctx
          (diag ?source_name:ctx.source_name
             ~span:(Span.join a.rc_span b.rc_span)
             ~code:"L105" Diagnostic.Warning
             (Printf.sprintf
                "equi-join compares %s.%s (%s) with %s.%s (%s): \
                 incompatible attribute domains undermine the elicited \
                 dependency"
                a.rc_rel a.rc_attr (Domain.to_string da) b.rc_rel b.rc_attr
                (Domain.to_string db))))
    (Equijoin.column_pairs_of_statement ctx.schema stmt)

let l107 ctx stmt =
  match stmt with
  | Ast.Query _ | Ast.Update _ | Ast.Delete _ | Ast.Insert_select _
  | Ast.Select_into _ | Ast.Declare_cursor _ | Ast.Create_view _ ->
      if
        List.length ctx.rels_seen >= 2
        && Equijoin.of_statement ctx.schema stmt = []
      then
        add ctx
          (diag ?source_name:ctx.source_name ~span:ctx.first_span
             ~code:"L107" Diagnostic.Info
             (Printf.sprintf
                "statement navigates %s but contributes no equi-join to Q"
                (String.concat ", " (List.rev ctx.rels_seen))))
  | Ast.Create _ | Ast.Insert _ | Ast.Alter _ | Ast.Open_cursor _
  | Ast.Fetch _ | Ast.Close_cursor _ ->
      ()

(* ---------------------------------------------------------------- *)
(* Dataflow rules: L109 - L112                                        *)
(* ---------------------------------------------------------------- *)

let dataflow_rules ?source_name schema (stmts : Ast.statement list) =
  let df = Dataflow.analyze schema stmts in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  List.iter
    (fun (u : Dataflow.use) ->
      add
        (diag ?source_name ~span:u.Dataflow.u_span ~code:"L109"
           Diagnostic.Warning
           (Printf.sprintf
              "host variable %s is used before any SQL statement defines \
               it (its SELECT INTO/FETCH appears later): the value read \
               here is whatever the host program left in it"
              u.Dataflow.u_var)))
    df.Dataflow.undefined_uses;
  List.iter
    (fun (d : Dataflow.def) ->
      add
        (diag ?source_name ~span:d.Dataflow.d_span ~code:"L110"
           Diagnostic.Warning
           (Printf.sprintf
              "host variable %s is written here but never read by a \
               later SQL statement (dead write)"
              d.Dataflow.d_var)))
    df.Dataflow.dead_defs;
  (* one L111 per (def site, use site), not per chain: fallback pairing
     can thread one use through many defs *)
  let seen = ref [] in
  List.iter
    (fun (ch : Dataflow.chain) ->
      match (ch.Dataflow.c_def.d_col, ch.Dataflow.c_use.u_col) with
      | Some (dc : Equijoin.resolved_col), Some (uc : Equijoin.resolved_col)
        ->
          let dom (rc : Equijoin.resolved_col) =
            match Schema.find schema rc.rc_rel with
            | Some r when Relation.has_attr r rc.rc_attr ->
                Relation.domain_of r rc.rc_attr
            | _ -> Domain.Unknown
          in
          let dd = dom dc and du = dom uc in
          let key = (ch.Dataflow.c_def.d_span, ch.Dataflow.c_use.u_span) in
          if (not (Domain.compatible dd du)) && not (List.mem key !seen)
          then begin
            seen := key :: !seen;
            add
              (diag ?source_name
                 ~span:
                   (Span.join ch.Dataflow.c_def.d_span
                      ch.Dataflow.c_use.u_span)
                 ~code:"L111" Diagnostic.Warning
                 (Printf.sprintf
                    "host variable %s carries %s.%s (%s) into a use \
                     against %s.%s (%s): incompatible attribute domains \
                     undermine the recovered dataflow join"
                    ch.Dataflow.c_use.u_var dc.rc_rel dc.rc_attr
                    (Domain.to_string dd) uc.rc_rel uc.rc_attr
                    (Domain.to_string du)))
          end
      | _ -> ())
    df.Dataflow.chains;
  List.iter
    (fun (c : Dataflow.cursor_info) ->
      match c.Dataflow.cur_opened with
      | first :: _ when c.Dataflow.cur_fetches = 0 ->
          add
            (diag ?source_name ~span:first ~code:"L112" Diagnostic.Warning
               (Printf.sprintf
                  "cursor %s is opened but never fetched: its declared \
                   query runs for nothing"
                  c.Dataflow.cur_name))
      | _ -> ())
    df.Dataflow.cursors;
  List.rev !diags

(* ---------------------------------------------------------------- *)
(* Entry points                                                       *)
(* ---------------------------------------------------------------- *)

let synthetic_frame ctx rel =
  note_rel ctx Span.dummy rel;
  let frame =
    [ { e_alias = rel; e_rel = rel; e_span = Span.dummy; e_scope = fresh ctx } ]
  in
  check_frame ctx [] frame;
  frame

let check_statement ?source_name schema (stmt : Ast.statement) =
  let ctx =
    {
      schema;
      source_name;
      scope_ctr = 0;
      diags = [];
      edges = [];
      multi_frames = [];
      rels_seen = [];
      first_span = Span.dummy;
    }
  in
  (match stmt with
  | Ast.Query q -> walk_query ctx [] q
  | Ast.Update (rel, sets, where) ->
      let frame = synthetic_frame ctx rel in
      List.iter
        (fun (a, e) ->
          if known ctx rel && not (rel_has ctx rel a) then
            add ctx
              (diag ?source_name ~code:"L102" Diagnostic.Error
                 (Printf.sprintf "relation %s has no attribute %s" rel a));
          walk_expr ctx [ frame ] e)
        sets;
      Option.iter (walk_cond ctx [ frame ]) where
  | Ast.Delete (rel, where) ->
      let frame = synthetic_frame ctx rel in
      Option.iter (walk_cond ctx [ frame ]) where
  | Ast.Insert (rel, cols, _) | Ast.Insert_select (rel, cols, _) ->
      (if not (known ctx rel) then
         add ctx
           (diag ?source_name ~code:"L101" Diagnostic.Error
              (Printf.sprintf
                 "unknown table %s: the dictionary declares no such relation"
                 rel))
       else
         Option.iter
           (List.iter (fun a ->
                if not (rel_has ctx rel a) then
                  add ctx
                    (diag ?source_name ~code:"L102" Diagnostic.Error
                       (Printf.sprintf "relation %s has no attribute %s" rel
                          a))))
           cols);
      (match stmt with
      | Ast.Insert_select (_, _, q) -> walk_query ctx [] q
      | _ -> ())
  | Ast.Select_into (_, q) | Ast.Declare_cursor (_, q, _) ->
      walk_query ctx [] q
  | Ast.Create_view cv -> walk_query ctx [] cv.Ast.cv_query
  | Ast.Create _ | Ast.Alter _ | Ast.Open_cursor _ | Ast.Fetch _
  | Ast.Close_cursor _ ->
      ());
  l106 ctx;
  l105 ctx stmt;
  l107 ctx stmt;
  List.rev ctx.diags

let check_script ?source_name schema text =
  match Parser.parse_script text with
  | stmts ->
      List.concat_map (check_statement ?source_name schema) stmts
      @ dataflow_rules ?source_name schema stmts
  | exception (Parser.Error msg | Lexer.Error (msg, _)) ->
      [
        diag ?source_name ~code:"L108" Diagnostic.Warning
          (Printf.sprintf "SQL script does not parse: %s" msg);
      ]

let check_program ?source_name schema text =
  let e = Embedded.scan text in
  let failures =
    List.map
      (fun (fragment, span) ->
        let first_line =
          match String.index_opt fragment '\n' with
          | Some i -> String.sub fragment 0 i
          | None -> fragment
        in
        diag ?source_name ~span ~code:"L108" Diagnostic.Warning
          (Printf.sprintf
             "embedded SQL fragment does not parse (skipped by \
              extraction): %s"
             (String.trim first_line)))
      e.Embedded.located_failures
  in
  failures
  @ List.concat_map (check_statement ?source_name schema) e.Embedded.statements
  @ dataflow_rules ?source_name schema e.Embedded.statements
