(** Lint diagnostics.

    A diagnostic carries a stable rule code (["L001"], ["L105"], …), a
    severity, a message, and a source span ({!Sqlx.Span.dummy} when the
    finding has no textual anchor, e.g. a verification rule over pipeline
    artifacts). Rendering is either machine-readable JSON or the classic
    human compiler format [name:line:col: severity[CODE]: message] with a
    source excerpt and caret line.

    Rule code families:
    - [L0xx] — schema/dictionary rules ({!Rules_schema});
    - [L1xx] — workload rules over embedded SQL ({!Rules_workload});
    - [L2xx] — verification rules over pipeline artifacts
      ({!Rules_verify}). *)

type severity = Info | Warning | Error

val severity_to_string : severity -> string
val severity_of_string : string -> severity option
val pp_severity : Format.formatter -> severity -> unit

val severity_rank : severity -> int
(** [Info] 0, [Warning] 1, [Error] 2. *)

type t = {
  code : string;  (** stable rule code, e.g. ["L101"] *)
  severity : severity;
  message : string;
  span : Sqlx.Span.t;
  source_name : string option;  (** which schema script / program *)
}

val make :
  ?span:Sqlx.Span.t -> ?source_name:string -> code:string -> severity -> string -> t
(** [span] defaults to {!Sqlx.Span.dummy}. *)

val compare : t -> t -> int
(** Orders by source name, then span offset, then code, then message —
    the stable report order. *)

val max_severity : t list -> severity option
(** The worst severity present; [None] on an empty list. *)

val count : severity -> t list -> int

val header : t -> string
(** One-line rendering without excerpt:
    [name:line:col: severity[CODE]: message] (location pieces omitted
    when unknown). *)

val render : ?source:string -> t -> string list
(** {!header} plus, when [source] is given and the span lies inside it,
    the indented two-line excerpt of {!Sqlx.Span.excerpt}. *)

val to_json : t -> string
(** One JSON object:
    [{"code":…,"severity":…,"message":…,"source":…,"span":{…}|null}]. *)

val list_to_json : t list -> string
(** JSON array of {!to_json} objects, one per line. *)
