(** Workload rules ([L1xx]) over parsed (embedded) SQL.

    The checks resolve column references through FROM aliases and nested
    scopes exactly like the equi-join elicitation ({!Sqlx.Equijoin}), so
    every reference that elicitation would silently skip gets a
    diagnostic explaining why:

    - [L101] (error) — FROM references a table the dictionary does not
      know.
    - [L102] (error) — column reference resolves to no relation in scope
      (unknown qualifier, attribute missing from the qualified relation,
      or unqualified attribute found nowhere). Suppressed when an
      unknown table is in scope (the column may well belong to it).
    - [L103] (warning) — unqualified column is ambiguous: several FROM
      entries provide the attribute, so elicitation drops the predicate.
    - [L104] (warning/info) — duplicate alias inside one FROM (warning);
      alias shadowing an enclosing scope's entry (info).
    - [L105] (warning) — equi-join between attributes of incompatible
      declared domains (an [Int] joined to a [Date] is evidence against
      the elicited dependency, not for it).
    - [L106] (warning) — cartesian product: a multi-relation FROM whose
      entries are not all connected by equality predicates (connectivity
      counts correlated equalities through subqueries).
    - [L107] (info) — the statement navigates several relations but
      contributes no equi-join to the paper's set [Q].
    - [L108] (warning) — an embedded-SQL fragment that was found but
      does not parse, located in the host program.

    The dataflow rules run over a whole program's ordered statements
    ({!Sqlx.Dataflow}); host variables never defined by any SQL
    statement are assumed host-language state and stay silent:

    - [L109] (warning) — a host variable is used before the SQL
      statement that defines it.
    - [L110] (warning) — a host variable is written ([SELECT … INTO] /
      [FETCH]) but never read by a later SQL statement (dead write).
    - [L111] (warning) — a def-use chain carries a value between
      attributes of incompatible declared domains.
    - [L112] (warning) — a cursor is opened but never fetched. *)

open Relational

val check_statement :
  ?source_name:string -> Schema.t -> Sqlx.Ast.statement -> Diagnostic.t list

val dataflow_rules :
  ?source_name:string ->
  Schema.t ->
  Sqlx.Ast.statement list ->
  Diagnostic.t list
(** The [L109]–[L112] checks over one program's ordered statements.
    Called by {!check_script} and {!check_program}; exposed for callers
    that already hold a parsed statement list. *)

val check_script :
  ?source_name:string -> Schema.t -> string -> Diagnostic.t list
(** Parse a plain SQL script and check each statement; a parse failure
    yields a single [L108] diagnostic. *)

val check_program :
  ?source_name:string -> Schema.t -> string -> Diagnostic.t list
(** Scan a host program for embedded SQL ({!Sqlx.Embedded}), report
    unparseable fragments as [L108] with host-program spans, and check
    every parsed statement (whose AST spans are host-based too). *)
