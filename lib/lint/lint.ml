open Relational
open Sqlx

type kind = Schema_script | Program | Sql_script
type source = { src_name : string; src_kind : kind; src_text : string }

let source ~name kind text =
  { src_name = name; src_kind = kind; src_text = text }

type report = {
  diags : Diagnostic.t list;
  sources : (string * string) list;
}

let empty = { diags = []; sources = [] }

(* build the dictionary from the DDL sources, skipping relations whose
   own DDL is broken — the schema rules report those defects *)
let schema_of_sources sources =
  List.fold_left
    (fun schema src ->
      if src.src_kind <> Schema_script then schema
      else
        match Parser.parse_script src.src_text with
        | exception (Parser.Error _ | Lexer.Error _) -> schema
        | stmts ->
            List.fold_left
              (fun schema stmt ->
                match stmt with
                | Ast.Create ct -> (
                    match Ddl.relation_of_create ct with
                    | rel when not (Schema.mem schema rel.Relation.name) ->
                        Schema.add schema rel
                    | _ -> schema
                    | exception Invalid_argument _ -> schema)
                | _ -> schema)
              schema stmts)
    Schema.empty sources

let run ?schema sources =
  let schema =
    match schema with Some s -> s | None -> schema_of_sources sources
  in
  let diags =
    List.concat_map
      (fun src ->
        match src.src_kind with
        | Schema_script ->
            Rules_schema.check_script ~source_name:src.src_name src.src_text
        | Program ->
            Rules_workload.check_program ~source_name:src.src_name schema
              src.src_text
        | Sql_script ->
            Rules_workload.check_script ~source_name:src.src_name schema
              src.src_text)
      sources
  in
  {
    diags = List.stable_sort Diagnostic.compare diags;
    sources = List.map (fun s -> (s.src_name, s.src_text)) sources;
  }

let verify result =
  { diags = Rules_verify.check_result result; sources = [] }

let merge a b =
  {
    diags = List.stable_sort Diagnostic.compare (a.diags @ b.diags);
    sources = a.sources @ b.sources;
  }

let max_severity r = Diagnostic.max_severity r.diags

let should_fail ~fail_on r =
  List.exists
    (fun (d : Diagnostic.t) ->
      Diagnostic.severity_rank d.Diagnostic.severity
      >= Diagnostic.severity_rank fail_on)
    r.diags

let summary_line r =
  Printf.sprintf "%d error(s), %d warning(s), %d info(s)"
    (Diagnostic.count Diagnostic.Error r.diags)
    (Diagnostic.count Diagnostic.Warning r.diags)
    (Diagnostic.count Diagnostic.Info r.diags)

let render_text r =
  match r.diags with
  | [] -> "no diagnostics\n"
  | diags ->
      let b = Buffer.create 1024 in
      List.iter
        (fun (d : Diagnostic.t) ->
          let source =
            Option.bind d.Diagnostic.source_name (fun n ->
                List.assoc_opt n r.sources)
          in
          List.iter
            (fun line ->
              Buffer.add_string b line;
              Buffer.add_char b '\n')
            (Diagnostic.render ?source d))
        diags;
      Buffer.add_string b (summary_line r);
      Buffer.add_char b '\n';
      Buffer.contents b

let render_json r =
  Printf.sprintf
    "{\"diagnostics\":%s,\"summary\":{\"error\":%d,\"warning\":%d,\"info\":%d}}"
    (Diagnostic.list_to_json r.diags)
    (Diagnostic.count Diagnostic.Error r.diags)
    (Diagnostic.count Diagnostic.Warning r.diags)
    (Diagnostic.count Diagnostic.Info r.diags)
