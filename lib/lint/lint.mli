(** Dbre_lint entry point: run rule families over sources and artifacts,
    collate and render reports.

    Typical use:
    {[
      let report =
        Lint.run
          [ Lint.source ~name:"schema.sql" Lint.Schema_script ddl;
            Lint.source ~name:"app.cob" Lint.Program cobol_text ]
      in
      print_string (Lint.render_text report);
      exit (if Lint.should_fail ~fail_on:Diagnostic.Error report then 1 else 0)
    ]} *)

open Relational

type kind =
  | Schema_script  (** DDL text: schema rules [L0xx] *)
  | Program  (** host program: embedded-SQL workload rules [L1xx] *)
  | Sql_script  (** plain SQL text: workload rules [L1xx] *)

type source = { src_name : string; src_kind : kind; src_text : string }

val source : name:string -> kind -> string -> source

type report = {
  diags : Diagnostic.t list;  (** sorted by {!Diagnostic.compare} *)
  sources : (string * string) list;  (** name → text, for excerpts *)
}

val empty : report

val run : ?schema:Schema.t -> source list -> report
(** Check every source. The dictionary the workload rules resolve
    against is [schema] when given, otherwise it is built from the
    [Schema_script] sources (leniently: relations whose DDL is itself
    broken are skipped — their defects are already reported by the
    schema rules). *)

val verify : Dbre.Pipeline.result -> report
(** The [L2xx] verification rules over a completed pipeline run. *)

val merge : report -> report -> report

val max_severity : report -> Diagnostic.severity option

val should_fail : fail_on:Diagnostic.severity -> report -> bool
(** Some diagnostic reaches the threshold severity. *)

val render_text : report -> string
(** Human rendering: one header line per diagnostic with its source
    excerpt and caret, then a summary line. *)

val render_json : report -> string
(** Machine rendering:
    [{"diagnostics":[…],"summary":{"error":n,"warning":n,"info":n}}]. *)
