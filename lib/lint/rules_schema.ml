open Relational
open Sqlx

let diag = Diagnostic.make

(* the stem of a repeated-group member: name minus trailing digits; None
   when the name has no digit suffix or nothing else *)
let repeated_stem name =
  let n = String.length name in
  let rec first_digit i =
    if i = 0 then 0
    else
      match name.[i - 1] with '0' .. '9' -> first_digit (i - 1) | _ -> i
  in
  let cut = first_digit n in
  if cut = n || cut = 0 then None else Some (String.sub name 0 cut)

let lower = String.lowercase_ascii

(* group (stem, representative members) preserving first-seen order *)
let repeated_groups names =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun name ->
      match repeated_stem (lower name) with
      | None -> ()
      | Some stem -> (
          match Hashtbl.find_opt tbl stem with
          | Some cell -> cell := name :: !cell
          | None ->
              Hashtbl.add tbl stem (ref [ name ]);
              order := stem :: !order))
    names;
  List.filter_map
    (fun stem ->
      match !(Hashtbl.find tbl stem) with
      | [ _ ] | [] -> None
      | members -> Some (stem, List.rev members))
    (List.rev !order)

(* ---------------------------------------------------------------- *)
(* AST-level checks                                                   *)
(* ---------------------------------------------------------------- *)

let has_key (ct : Ast.create_table) =
  List.exists
    (fun (c : Ast.column_def) ->
      List.mem Ast.C_unique c.col_constraints
      || List.mem Ast.C_primary_key c.col_constraints)
    ct.columns
  || List.exists
       (function
         | Ast.T_unique _ | Ast.T_primary_key _ -> true
         | Ast.T_foreign_key _ -> false)
       ct.constraints

let l001 ?source_name (ct : Ast.create_table) =
  if has_key ct then []
  else
    [
      diag ?source_name ~span:ct.ct_span ~code:"L001" Diagnostic.Warning
        (Printf.sprintf
           "relation %s declares no key: it contributes nothing to K and \
            no referential constraint can target it"
           ct.ct_name);
    ]

let l002 ?source_name (ct : Ast.create_table) =
  (* attributes under a (non-PRIMARY) unique constraint that may be NULL *)
  let col_def name =
    List.find_opt
      (fun (c : Ast.column_def) -> lower c.col_name = lower name)
      ct.columns
  in
  let nullable name =
    match col_def name with
    | None -> false (* unknown attr: L005/L003 territory *)
    | Some c ->
        not
          (List.mem Ast.C_not_null c.col_constraints
          || List.mem Ast.C_primary_key c.col_constraints)
  in
  let unique_sets =
    List.filter_map
      (function Ast.T_unique cols -> Some cols | _ -> None)
      ct.constraints
    @ List.filter_map
        (fun (c : Ast.column_def) ->
          if
            List.mem Ast.C_unique c.col_constraints
            && not (List.mem Ast.C_primary_key c.col_constraints)
          then Some [ c.col_name ]
          else None)
        ct.columns
  in
  List.concat_map
    (fun cols ->
      List.filter_map
        (fun a ->
          if nullable a then
            let span =
              match col_def a with
              | Some c -> c.cd_span
              | None -> ct.ct_span
            in
            Some
              (diag ?source_name ~span ~code:"L002" Diagnostic.Warning
                 (Printf.sprintf
                    "attribute %s.%s belongs to a UNIQUE key but is not \
                     declared NOT NULL: SQL UNIQUE admits NULLs, so this \
                     dictionary key may not identify tuples"
                    ct.ct_name a))
          else None)
        cols)
    unique_sets

let l003 ?source_name (ct : Ast.create_table) =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (c : Ast.column_def) ->
      let k = lower c.col_name in
      if Hashtbl.mem seen k then
        Some
          (diag ?source_name ~span:c.cd_span ~code:"L003" Diagnostic.Error
             (Printf.sprintf "duplicate attribute %s in relation %s"
                c.col_name ct.ct_name))
      else begin
        Hashtbl.add seen k ();
        None
      end)
    ct.columns

let l004 ?source_name (ct : Ast.create_table) =
  List.map
    (fun (stem, members) ->
      let span =
        match
          List.find_opt
            (fun (c : Ast.column_def) -> List.mem c.col_name members)
            ct.columns
        with
        | Some c -> c.cd_span
        | None -> ct.ct_span
      in
      diag ?source_name ~span ~code:"L004" Diagnostic.Info
        (Printf.sprintf
           "relation %s repeats attribute group '%s' (%s): a denormalized \
            repeated group the Restruct step cannot split without expert \
            help"
           ct.ct_name stem
           (String.concat ", " members)))
    (repeated_groups
       (List.map (fun (c : Ast.column_def) -> c.col_name) ct.columns))

let l005 ?source_name (creates : Ast.create_table list)
    (ct : Ast.create_table) =
  let find_table name =
    List.find_opt (fun (t : Ast.create_table) -> lower t.ct_name = lower name) creates
  in
  let has_col (t : Ast.create_table) a =
    List.exists (fun (c : Ast.column_def) -> lower c.col_name = lower a) t.columns
  in
  let declares_key (t : Ast.create_table) cols =
    let canon l = List.sort String.compare (List.map lower l) in
    let want = canon cols in
    List.exists
      (function
        | Ast.T_unique k | Ast.T_primary_key k -> canon k = want
        | Ast.T_foreign_key _ -> false)
      t.constraints
    || (match cols with
       | [ a ] ->
           List.exists
             (fun (c : Ast.column_def) ->
               lower c.col_name = lower a
               && (List.mem Ast.C_unique c.col_constraints
                  || List.mem Ast.C_primary_key c.col_constraints))
             t.columns
       | _ -> false)
  in
  List.concat_map
    (function
      | Ast.T_unique _ | Ast.T_primary_key _ -> []
      | Ast.T_foreign_key (cols, target, tcols) -> (
          let fk_label =
            Printf.sprintf "FOREIGN KEY (%s) REFERENCES %s(%s)"
              (String.concat ", " cols)
              target
              (String.concat ", " tcols)
          in
          let err msg =
            [
              diag ?source_name ~span:ct.ct_span ~code:"L005" Diagnostic.Error
                (Printf.sprintf "%s in %s: %s" fk_label ct.ct_name msg);
            ]
          in
          if List.length cols <> List.length tcols then
            err "referencing and referenced column lists differ in width"
          else
            let local_missing =
              List.filter (fun a -> not (has_col ct a)) cols
            in
            if local_missing <> [] then
              err
                (Printf.sprintf "unknown local column %s"
                   (String.concat ", " local_missing))
            else
              match find_table target with
              | None ->
                  err (Printf.sprintf "unknown referenced table %s" target)
              | Some t ->
                  let missing =
                    List.filter (fun a -> not (has_col t a)) tcols
                  in
                  if missing <> [] then
                    err
                      (Printf.sprintf "unknown referenced column %s"
                         (String.concat ", " missing))
                  else if not (declares_key t tcols) then
                    [
                      diag ?source_name ~span:ct.ct_span ~code:"L005"
                        Diagnostic.Warning
                        (Printf.sprintf
                           "%s in %s: referenced columns are not a declared \
                            key of %s, so this constraint is not a \
                            referential integrity constraint in the \
                            paper's sense"
                           fk_label ct.ct_name target);
                    ]
                  else []))
    ct.constraints

let check_creates ?source_name creates =
  List.concat_map
    (fun ct ->
      l003 ?source_name ct
      @ l001 ?source_name ct
      @ l002 ?source_name ct
      @ l004 ?source_name ct
      @ l005 ?source_name creates ct)
    creates

let check_script ?source_name script =
  match Parser.parse_script script with
  | stmts ->
      check_creates ?source_name
        (List.filter_map
           (function Ast.Create ct -> Some ct | _ -> None)
           stmts)
  | exception (Parser.Error msg | Lexer.Error (msg, _)) ->
      [
        diag ?source_name ~code:"L006" Diagnostic.Error
          (Printf.sprintf "DDL script does not parse: %s" msg);
      ]

(* ---------------------------------------------------------------- *)
(* Dictionary-only checks                                             *)
(* ---------------------------------------------------------------- *)

let check_schema schema =
  List.concat_map
    (fun (r : Relation.t) ->
      let keyless =
        if r.Relation.uniques = [] then
          [
            diag ~code:"L001" Diagnostic.Warning
              (Printf.sprintf
                 "relation %s declares no key: it contributes nothing to K \
                  and no referential constraint can target it"
                 r.Relation.name);
          ]
        else []
      in
      let repeated =
        List.map
          (fun (stem, members) ->
            diag ~code:"L004" Diagnostic.Info
              (Printf.sprintf
                 "relation %s repeats attribute group '%s' (%s): a \
                  denormalized repeated group the Restruct step cannot \
                  split without expert help"
                 r.Relation.name stem
                 (String.concat ", " members)))
          (repeated_groups r.Relation.attrs)
      in
      keyless @ repeated)
    (Schema.relations schema)
