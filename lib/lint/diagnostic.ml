open Sqlx

type severity = Info | Warning | Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_of_string = function
  | "info" -> Some Info
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

let pp_severity ppf s = Format.pp_print_string ppf (severity_to_string s)
let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

type t = {
  code : string;
  severity : severity;
  message : string;
  span : Span.t;
  source_name : string option;
}

let make ?(span = Span.dummy) ?source_name ~code severity message =
  { code; severity; message; span; source_name }

let compare a b =
  let c =
    Stdlib.compare
      (Option.value ~default:"" a.source_name)
      (Option.value ~default:"" b.source_name)
  in
  if c <> 0 then c
  else
    let c = Int.compare a.span.Span.s_off b.span.Span.s_off in
    if c <> 0 then c
    else
      let c = String.compare a.code b.code in
      if c <> 0 then c else String.compare a.message b.message

let max_severity diags =
  List.fold_left
    (fun acc d ->
      match acc with
      | None -> Some d.severity
      | Some s ->
          if severity_rank d.severity > severity_rank s then Some d.severity
          else acc)
    None diags

let count sev diags = List.length (List.filter (fun d -> d.severity = sev) diags)

let header d =
  let b = Buffer.create 64 in
  (match d.source_name with
  | Some n ->
      Buffer.add_string b n;
      Buffer.add_char b ':'
  | None -> ());
  if not (Span.is_dummy d.span) then begin
    Buffer.add_string b
      (Printf.sprintf "%d:%d:" d.span.Span.s_line d.span.Span.s_col)
  end;
  if Buffer.length b > 0 then Buffer.add_char b ' ';
  Buffer.add_string b
    (Printf.sprintf "%s[%s]: %s" (severity_to_string d.severity) d.code
       d.message);
  Buffer.contents b

let render ?source d =
  let excerpt =
    match source with
    | None -> []
    | Some text ->
        List.map (fun l -> "  " ^ l) (Span.excerpt d.span text)
  in
  header d :: excerpt

(* ---------------------------------------------------------------- *)
(* JSON                                                              *)
(* ---------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let span_json sp =
  if Span.is_dummy sp then "null"
  else
    Printf.sprintf
      "{\"offset\":%d,\"line\":%d,\"col\":%d,\"end_offset\":%d,\"end_line\":%d,\"end_col\":%d}"
      sp.Span.s_off sp.Span.s_line sp.Span.s_col sp.Span.e_off sp.Span.e_line
      sp.Span.e_col

let to_json d =
  Printf.sprintf
    "{\"code\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\",\"source\":%s,\"span\":%s}"
    (json_escape d.code)
    (severity_to_string d.severity)
    (json_escape d.message)
    (match d.source_name with
    | Some n -> Printf.sprintf "\"%s\"" (json_escape n)
    | None -> "null")
    (span_json d.span)

let list_to_json diags =
  match diags with
  | [] -> "[]"
  | _ ->
      "[\n  " ^ String.concat ",\n  " (List.map to_json diags) ^ "\n]"
