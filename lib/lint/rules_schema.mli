(** Schema/dictionary rules ([L0xx]).

    - [L001] (warning) — relation declares no key: it contributes nothing
      to the paper's set [K], so no RIC can ever target it.
    - [L002] (warning) — attribute of a [UNIQUE] constraint not declared
      [NOT NULL]: SQL [UNIQUE] admits NULLs, so the dictionary key the
      paper trusts may not identify tuples.
    - [L003] (error) — duplicate attribute name in a [CREATE TABLE].
    - [L004] (info) — repeated-group smell: several attributes share a
      stem with numeric suffixes ([phone1], [phone2], …), the classic
      denormalized repeated group (§3) that Restruct cannot see without
      expert help.
    - [L005] (error/warning) — malformed [FOREIGN KEY]: width mismatch,
      unknown referenced table or column (errors), or a reference to a
      non-key of the target (warning — the paper's RICs are key-based).
    - [L006] (error) — the DDL script does not parse. *)

open Relational

val check_creates :
  ?source_name:string -> Sqlx.Ast.create_table list -> Diagnostic.t list
(** Check a parsed DDL script (the list of its [CREATE TABLE]
    statements). Foreign keys are resolved against the other statements
    of the same list. *)

val check_script : ?source_name:string -> string -> Diagnostic.t list
(** Parse a DDL script and run {!check_creates}; a parse failure yields
    a single [L006] diagnostic instead of an exception. *)

val check_schema : Schema.t -> Diagnostic.t list
(** Dictionary-only variant for schemas that did not come from DDL text
    (e.g. loaded from CSV metadata): runs the keyless-relation and
    repeated-group rules with no spans. *)
