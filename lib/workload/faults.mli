(** Deterministic fault injection for robustness testing.

    Where {!Corrupt} dirties {e values} inside a loaded database (to
    stress dependency discovery on corrupted extensions), this module
    breaks the {e inputs} themselves — CSV text and the expert oracle —
    so tests can assert the pipeline survives each fault class with the
    expected quarantine report or structured partial result. All
    randomness comes from the caller's {!Rng}, so every fault is
    reproducible from a seed. *)

open Relational

type csv_fault =
  | Unterminated_quote
      (** tear the last data row open with an unclosed quote — a CSV
          {e syntax} fault (always exactly one per file) *)
  | Extra_field of int  (** append a surplus field to [n] distinct rows *)
  | Type_mismatch of int
      (** overwrite a typed (non-String) cell with a non-parsing token
          in [n] distinct rows; injects 0 when the relation has no
          typed column *)
  | Drop_column
      (** remove one whole column, header included (arity ≥ 2 required;
          loads as a missing declared column) *)

type injection = {
  csv : string;  (** the faulted document *)
  injected : int;
      (** faults actually injected (≤ requested: bounded by row count,
          0 when the document cannot host the fault) *)
  fault : csv_fault;
}

val fault_name : csv_fault -> string

val inject_csv : Rng.t -> Relation.t -> csv_fault -> string -> injection
(** [inject_csv rng rel fault csv] — [csv] must be a clean
    header-carrying document for [rel] (e.g. from [Csv.dump_table]). *)

val failing_oracle : every:int -> Dbre.Oracle.t -> Dbre.Oracle.t
(** Wrap the four decision callbacks with a shared counter that raises
    [Error.Error] (code [Oracle_failure]) on every [every]-th decision —
    modeling an expert session dying mid-run. Naming callbacks are left
    untouched (they never fail a real session). Raises
    [Invalid_argument] when [every <= 0]. *)

(** {2 Execution faults}

    Deterministic stand-ins for the pathologies the supervised runtime
    ({!Relational.Supervise}, {!Relational.Domain_pool.map_supervised})
    must survive: stalled experts, jobs that wedge forever, and tasks
    that crash transiently. *)

val slow_oracle : delay_s:float -> Dbre.Oracle.t -> Dbre.Oracle.t
(** Sleep [delay_s] seconds before every decision — an expert session
    that still answers, but slowly enough to blow a deadline budget.
    Raises [Invalid_argument] on a negative delay. *)

val cancelling_oracle :
  after:int -> Supervise.t -> Dbre.Oracle.t -> Dbre.Oracle.t
(** Cancel the given supervision token on the [after]-th decision (then
    keep answering normally) — models an operator hitting ctrl-C at a
    reproducible point mid-elicitation. Raises [Invalid_argument] when
    [after <= 0]. *)

val wedge_until : bool Atomic.t -> unit
(** Spin (with [Domain.cpu_relax]) until the flag flips — the canonical
    wedged-job body for pool-timeout tests: deterministic to trigger,
    releasable so test runs terminate. *)

val transient : failures:int -> ('a -> 'b) -> 'a -> 'b
(** [transient ~failures f] crashes ([Error.Error], code [Invariant])
    on the first [failures] invocations {e across all arguments}, then
    behaves as [f] — the retry-once recovery case of
    {!Relational.Domain_pool.map_supervised}. The countdown is atomic,
    so it is safe to call from pool workers. Raises [Invalid_argument]
    on a negative count. *)
