open Relational

let pad3 n = Printf.sprintf "%03d" n

(* ------------------------------------------------------------------ *)
(* Schema (§5)                                                          *)
(* ------------------------------------------------------------------ *)

let schema () =
  Schema.of_relations
    [
      Relation.make
        ~domains:
          [
            ("id", Domain.Int); ("name", Domain.String);
            ("street", Domain.String); ("number", Domain.Int);
            ("zip-code", Domain.String); ("state", Domain.String);
          ]
        ~uniques:[ [ "id" ] ] "Person"
        [ "id"; "name"; "street"; "number"; "zip-code"; "state" ];
      Relation.make
        ~domains:
          [ ("no", Domain.Int); ("date", Domain.Date); ("salary", Domain.Int) ]
        ~uniques:[ [ "no"; "date" ] ] "HEmployee" [ "no"; "date"; "salary" ];
      Relation.make
        ~domains:
          [
            ("dep", Domain.String); ("emp", Domain.Int);
            ("skill", Domain.String); ("location", Domain.String);
            ("proj", Domain.String);
          ]
        ~uniques:[ [ "dep" ] ] ~not_nulls:[ "location" ] "Department"
        [ "dep"; "emp"; "skill"; "location"; "proj" ];
      Relation.make
        ~domains:
          [
            ("emp", Domain.Int); ("dep", Domain.String);
            ("proj", Domain.String); ("date", Domain.Date);
            ("project-name", Domain.String);
          ]
        ~uniques:[ [ "emp"; "dep"; "proj" ] ] "Assignment"
        [ "emp"; "dep"; "proj"; "date"; "project-name" ];
    ]

let ddl =
  {|
CREATE TABLE Person (
  id INT PRIMARY KEY,
  name VARCHAR(40),
  street VARCHAR(40),
  number INT,
  zip-code VARCHAR(10),
  state VARCHAR(20)
);
CREATE TABLE HEmployee (
  no INT,
  date DATE,
  salary INT,
  UNIQUE (no, date)
);
CREATE TABLE Department (
  dep VARCHAR(10),
  emp INT,
  skill VARCHAR(20),
  location VARCHAR(20) NOT NULL,
  proj VARCHAR(10),
  PRIMARY KEY (dep)
);
CREATE TABLE Assignment (
  emp INT,
  dep VARCHAR(10),
  proj VARCHAR(10),
  date DATE,
  project-name VARCHAR(40),
  PRIMARY KEY (emp, dep, proj)
);
|}

(* ------------------------------------------------------------------ *)
(* Extension matching the worked counts                                 *)
(* ------------------------------------------------------------------ *)

let n_persons = 2200
let n_employees = 1550
let n_double_dated = 310 (* employees with two salary records *)
let n_departments = 180
let n_managed = 150 (* departments with a (non-null) manager *)
let n_assigned_emps = 800

let database () =
  let db = Database.create (schema ()) in
  (* Person: zip-code -> state holds by construction *)
  for i = 1 to n_persons do
    let zip = i mod 50 in
    Database.insert db "Person"
      [
        Value.Int i;
        Value.String (Printf.sprintf "name-%d" i);
        Value.String (Printf.sprintf "street-%d" (i mod 40));
        Value.Int ((i mod 99) + 1);
        Value.String (Printf.sprintf "z%02d" zip);
        Value.String (Printf.sprintf "state-%d" (zip mod 12));
      ]
  done;
  (* HEmployee: no \in [1, 1550] subseteq Person ids; 310 employees have a
     salary history of two records with different salaries, so
     no -> salary fails *)
  for no = 1 to n_employees do
    let base_salary = 1000 + (no mod 500) in
    Database.insert db "HEmployee"
      [
        Value.Int no;
        Value.date 2020 ((no mod 12) + 1) ((no mod 28) + 1);
        Value.Int base_salary;
      ];
    if no <= n_double_dated then
      Database.insert db "HEmployee"
        [
          Value.Int no;
          Value.date 2021 ((no mod 12) + 1) ((no mod 28) + 1);
          Value.Int (base_salary + 100);
        ]
  done;
  (* Department: deps d001..d180; the first 150 have a manager (emp),
     each manager appearing once so emp -> skill, proj holds; departments
     1 and 2 share project pr001 with different managers/skills, so
     proj -> emp and proj -> skill fail; the last 30 have NULL manager *)
  for i = 1 to n_departments do
    let dep = "d" ^ pad3 i in
    let location = Value.String ("loc-" ^ pad3 i) in
    if i <= n_managed then begin
      let proj =
        if i <= 2 then "pr001" else "pr" ^ pad3 (((i - 3) mod 88) + 2)
      in
      Database.insert db "Department"
        [
          Value.String dep;
          Value.Int i;
          Value.String (Printf.sprintf "sk-%d" i);
          location;
          Value.String proj;
        ]
    end
    else
      Database.insert db "Department"
        [ Value.String dep; Value.Null; Value.Null; location; Value.Null ]
  done;
  (* Assignment: 800 employees with two assignments each; deps span
     d061..d220 (NEI with Department's d001..d180: 120 shared values);
     projects span pr001..pr400 with project-name a function of proj
     (the one FD that must hold); dates vary per row so emp -> date,
     proj -> date and dep -> date all fail *)
  for emp = 1 to n_assigned_emps do
    let dep_a = "d" ^ pad3 (61 + (emp mod 160)) in
    let dep_b = "d" ^ pad3 (61 + ((emp + 40) mod 160)) in
    let proj_a = "pr" ^ pad3 ((emp mod 400) + 1) in
    let proj_b = "pr" ^ pad3 (((emp + 200) mod 400) + 1) in
    let insert dep proj year =
      Database.insert db "Assignment"
        [
          Value.Int emp;
          Value.String dep;
          Value.String proj;
          Value.date year ((emp mod 12) + 1) (((emp * 7) mod 28) + 1);
          Value.String ("Project " ^ proj);
        ]
    in
    insert dep_a proj_a 2021;
    insert dep_b proj_b 2022
  done;
  db

(* ------------------------------------------------------------------ *)
(* The set Q (§5)                                                       *)
(* ------------------------------------------------------------------ *)

let equijoins () =
  [
    Sqlx.Equijoin.make ("HEmployee", [ "no" ]) ("Person", [ "id" ]);
    Sqlx.Equijoin.make ("Department", [ "emp" ]) ("HEmployee", [ "no" ]);
    Sqlx.Equijoin.make ("Assignment", [ "emp" ]) ("HEmployee", [ "no" ]);
    Sqlx.Equijoin.make ("Assignment", [ "dep" ]) ("Department", [ "dep" ]);
    Sqlx.Equijoin.make ("Department", [ "proj" ]) ("Assignment", [ "proj" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Application programs (forms, reports, batch files)                   *)
(* ------------------------------------------------------------------ *)

let programs () =
  [
    (* a COBOL form: employee record lookup *)
    {|
       IDENTIFICATION DIVISION.
       PROGRAM-ID. EMPFORM.
       PROCEDURE DIVISION.
           EXEC SQL
             SELECT name, salary
             FROM Person, HEmployee
             WHERE HEmployee.no = Person.id AND HEmployee.date = :w-date
           END-EXEC.
           DISPLAY "employee record printed".
|};
    (* a C batch program: departments managed by well-paid employees *)
    {|
#include <stdio.h>
int list_departments(int minsal) {
  EXEC SQL
    SELECT dep, location
    FROM Department, HEmployee
    WHERE Department.emp = HEmployee.no AND HEmployee.salary >= :minsal;
  return 0;
}
|};
    (* a report generator building dynamic SQL *)
    {|
let query =
  "SELECT emp, proj FROM Assignment " +
  "WHERE emp IN (SELECT no FROM HEmployee WHERE salary > 2000)";
run_report(query);
|};
    (* a COBOL batch: assignments located in a given department site *)
    {|
       PROCEDURE DIVISION.
           EXEC SQL
             SELECT *
             FROM Assignment, Department
             WHERE Assignment.dep = Department.dep
               AND Department.location = :w-loc
           END-EXEC.
|};
    (* a consistency report: projects both managed and assigned *)
    {|
check_projects("SELECT proj FROM Department INTERSECT SELECT proj FROM Assignment");
|};
  ]

(* ------------------------------------------------------------------ *)
(* The scripted expert (§5-§7 narrative)                                *)
(* ------------------------------------------------------------------ *)

let oracle_script =
  {
    Dbre.Oracle.nei_choices =
      [
        ( "Assignment[dep] |X| Department[dep]",
          Dbre.Oracle.Conceptualize "Ass-Dept" );
      ];
    fd_rejections = [];
    fd_enforcements = [];
    hidden_accepted = [ "HEmployee.no" ];
    hidden_names =
      [ ("HEmployee.no", "Employee"); ("Assignment.dep", "Other-Dept") ];
    fd_names =
      [
        ("Department: emp -> proj,skill", "Manager");
        ("Assignment: proj -> project-name", "Project");
      ];
  }

let oracle () = Dbre.Oracle.scripted oracle_script

let config () =
  { Dbre.Pipeline.default_config with Dbre.Pipeline.oracle = oracle () }

let run () =
  let db = database () in
  Dbre.Pipeline.run ~config:(config ()) db
    (Dbre.Job_spec.Equijoins (equijoins ()))

let run_from_programs () =
  let db = database () in
  Dbre.Pipeline.run ~config:(config ()) db
    (Dbre.Job_spec.Programs (programs ()))
