open Relational

type csv_fault =
  | Unterminated_quote
  | Extra_field of int
  | Type_mismatch of int
  | Drop_column

type injection = { csv : string; injected : int; fault : csv_fault }

let fault_name = function
  | Unterminated_quote -> "unterminated-quote"
  | Extra_field n -> Printf.sprintf "extra-field(%d)" n
  | Type_mismatch n -> Printf.sprintf "type-mismatch(%d)" n
  | Drop_column -> "drop-column"

(* Distinct data-row indexes to mutate. *)
let sample_rows rng ~n_rows ~wanted =
  let wanted = min wanted n_rows in
  Rng.sample rng wanted (List.init n_rows (fun i -> i))

let typed_columns rel =
  List.filter
    (fun a ->
      match Relation.domain_of rel a with
      | Domain.Bool | Domain.Int | Domain.Float | Domain.Date -> true
      | Domain.String | Domain.Unknown -> false)
    rel.Relation.attrs

let rewrite_rows rows f =
  List.mapi (fun i row -> match f i row with Some r -> r | None -> row) rows

let inject_csv rng rel fault csv =
  let rows = Csv.parse csv in
  match (rows, fault) with
  | [], _ -> { csv; injected = 0; fault }
  | _ :: data, Unterminated_quote ->
      if data = [] then { csv; injected = 0; fault }
      else
        (* textual, not structural: tear the last data row open by
           appending a field whose quote never closes *)
        let body =
          let n = String.length csv in
          if n > 0 && csv.[n - 1] = '\n' then String.sub csv 0 (n - 1) else csv
        in
        { csv = body ^ ",\"@torn\n"; injected = 1; fault }
  | hdr :: data, Extra_field wanted ->
      let hit = sample_rows rng ~n_rows:(List.length data) ~wanted in
      let data =
        rewrite_rows data (fun i row ->
            if List.mem i hit then Some (row @ [ "@extra" ]) else None)
      in
      { csv = Csv.render (hdr :: data); injected = List.length hit; fault }
  | hdr :: data, Type_mismatch wanted -> (
      match typed_columns rel with
      | [] -> { csv; injected = 0; fault }
      | typed ->
          let col_of attr = List.assoc attr (List.mapi (fun i h -> (h, i)) hdr) in
          let hit = sample_rows rng ~n_rows:(List.length data) ~wanted in
          let data =
            rewrite_rows data (fun i row ->
                if not (List.mem i hit) then None
                else
                  let col = col_of (Rng.pick rng typed) in
                  Some
                    (List.mapi
                       (fun j cell -> if j = col then "@corrupt" else cell)
                       row))
          in
          { csv = Csv.render (hdr :: data); injected = List.length hit; fault })
  | hdr :: data, Drop_column ->
      if List.length hdr < 2 then { csv; injected = 0; fault }
      else
        let victim = Rng.int rng (List.length hdr) in
        let strip row = List.filteri (fun j _ -> j <> victim) row in
        {
          csv = Csv.render (List.map strip (hdr :: data));
          injected = 1;
          fault;
        }

(* shared plumbing: wrap the four decision callbacks (naming callbacks
   never fail or stall a real session) with one [tick] *)
let wrap_decisions tick (oracle : Dbre.Oracle.t) =
  {
    oracle with
    Dbre.Oracle.on_nei =
      (fun ctx ->
        tick ();
        oracle.Dbre.Oracle.on_nei ctx);
    validate_fd =
      (fun fd ->
        tick ();
        oracle.Dbre.Oracle.validate_fd fd);
    enforce_fd =
      (fun ~rel ~lhs ~attr ->
        tick ();
        oracle.Dbre.Oracle.enforce_fd ~rel ~lhs ~attr);
    conceptualize_hidden =
      (fun a ->
        tick ();
        oracle.Dbre.Oracle.conceptualize_hidden a);
  }

let failing_oracle ~every (oracle : Dbre.Oracle.t) =
  if every <= 0 then invalid_arg "Faults.failing_oracle: every must be positive";
  let n = ref 0 in
  wrap_decisions
    (fun () ->
      incr n;
      if !n mod every = 0 then
        Error.raisef Error.Oracle_failure
          "injected oracle failure at decision %d" !n)
    oracle

(* --- execution faults (supervised-runtime harness) --- *)

let slow_oracle ~delay_s (oracle : Dbre.Oracle.t) =
  if delay_s < 0.0 then invalid_arg "Faults.slow_oracle: negative delay";
  wrap_decisions (fun () -> Unix.sleepf delay_s) oracle

let cancelling_oracle ~after supervise (oracle : Dbre.Oracle.t) =
  if after <= 0 then invalid_arg "Faults.cancelling_oracle: after must be positive";
  let n = ref 0 in
  wrap_decisions
    (fun () ->
      incr n;
      if !n = after then Supervise.cancel supervise)
    oracle

let wedge_until flag =
  while not (Atomic.get flag) do
    Stdlib.Domain.cpu_relax ()
  done

let transient ~failures f =
  if failures < 0 then invalid_arg "Faults.transient: negative failures";
  let left = Atomic.make failures in
  fun x ->
    if Atomic.fetch_and_add left (-1) > 0 then
      Error.raisef Error.Invariant "injected transient crash (%d left)"
        (Atomic.get left)
    else f x
