open Relational
open Deps

type spec = {
  n_entities : int;
  rows_per_entity : int;
  n_denorm : int;
  refs_per_denorm : int;
  payload_per_ref : int;
  rows_per_denorm : int;
  null_ref_rate : float;
  flow_navigation : bool;
  seed : int64;
}

let default_spec =
  {
    n_entities = 4;
    rows_per_entity = 1000;
    n_denorm = 2;
    refs_per_denorm = 3;
    payload_per_ref = 2;
    rows_per_denorm = 2000;
    null_ref_rate = 0.05;
    flow_navigation = false;
    seed = 42L;
  }

let scale factor spec =
  if not (factor > 0.) then
    invalid_arg (Printf.sprintf "Gen_schema.scale: factor %g not positive" factor);
  let by n = max 1 (int_of_float (Float.round (float_of_int n *. factor))) in
  {
    spec with
    rows_per_entity = by spec.rows_per_entity;
    rows_per_denorm = by spec.rows_per_denorm;
  }

type ground_truth = { planted_inds : Ind.t list; planted_fds : Fd.t list }

type t = {
  db : Database.t;
  truth : ground_truth;
  equijoins : Sqlx.Equijoin.t list;
  programs : string list;
  dataflow_only_joins : Sqlx.Equijoin.t list;
}

let entity_name i = Printf.sprintf "E%d" i
let entity_id i = Printf.sprintf "e%d_id" i
let denorm_name j = Printf.sprintf "D%d" j
let ref_attr j k = Printf.sprintf "d%d_ref%d" j k
let payload_attr j k m = Printf.sprintf "d%d_ref%d_p%d" j k m

let entity_relation i =
  let id = entity_id i in
  Relation.make
    ~domains:
      [
        (id, Domain.Int);
        (Printf.sprintf "e%d_name" i, Domain.String);
        (Printf.sprintf "e%d_val" i, Domain.Int);
      ]
    ~uniques:[ [ id ] ]
    (entity_name i)
    [ id; Printf.sprintf "e%d_name" i; Printf.sprintf "e%d_val" i ]

let denorm_relation spec j ~targets =
  let id = Printf.sprintf "d%d_id" j in
  let ref_cols =
    List.concat
      (List.mapi
         (fun k _ ->
           (ref_attr j k, Domain.Int)
           :: List.init spec.payload_per_ref (fun m ->
                  (payload_attr j k m, Domain.String)))
         targets)
  in
  let attrs = (id, Domain.Int) :: ref_cols in
  Relation.make ~domains:attrs ~uniques:[ [ id ] ] (denorm_name j)
    (List.map fst attrs)

let generate spec =
  let rng = Rng.create spec.seed in
  (* which entity each (denorm, ref slot) targets *)
  let targets =
    List.init spec.n_denorm (fun _ ->
        List.init spec.refs_per_denorm (fun _ -> Rng.int rng spec.n_entities))
  in
  let schema =
    Schema.of_relations
      (List.init spec.n_entities entity_relation
      @ List.mapi
          (fun j t -> denorm_relation spec j ~targets:t)
          targets)
  in
  let db = Database.create schema in
  (* entities *)
  for i = 0 to spec.n_entities - 1 do
    for row = 1 to spec.rows_per_entity do
      Database.insert db (entity_name i)
        [
          Value.Int row;
          Value.String (Printf.sprintf "e%d-name-%d" i row);
          Value.Int (row mod 97);
        ]
    done
  done;
  (* denormalized relations: references are drawn from a strict subset of
     each entity's ids (so the planted INDs are proper), payload values
     are pure functions of the reference (so the planted FDs hold) *)
  let planted_inds = ref [] and planted_fds = ref [] and equijoins = ref [] in
  List.iteri
    (fun j tgt ->
      let dn = denorm_name j in
      List.iteri
        (fun k entity ->
          planted_inds :=
            Ind.make (dn, [ ref_attr j k ]) (entity_name entity, [ entity_id entity ])
            :: !planted_inds;
          if spec.payload_per_ref > 0 then
            planted_fds :=
              Fd.make dn
                [ ref_attr j k ]
                (List.init spec.payload_per_ref (fun m -> payload_attr j k m))
              :: !planted_fds;
          equijoins :=
            Sqlx.Equijoin.make (dn, [ ref_attr j k ])
              (entity_name entity, [ entity_id entity ])
            :: !equijoins)
        tgt;
      let ref_pool = max 1 (spec.rows_per_entity * 4 / 5) in
      for row = 1 to spec.rows_per_denorm do
        let ref_values =
          List.mapi
            (fun k _ ->
              if Rng.chance rng spec.null_ref_rate then (k, None)
              else (k, Some (1 + Rng.int rng ref_pool)))
            tgt
        in
        let cells =
          Value.Int row
          :: List.concat_map
               (fun (k, rv) ->
                 match rv with
                 | None ->
                     Value.Null
                     :: List.init spec.payload_per_ref (fun _ -> Value.Null)
                 | Some v ->
                     Value.Int v
                     :: List.init spec.payload_per_ref (fun m ->
                            Value.String (Printf.sprintf "p%d-%d-%d" k m v)))
               ref_values
        in
        Database.insert db dn cells
      done)
    targets;
  (* application programs: one embedded-SQL navigation per reference.
     The classic shape writes the join inside one statement; with
     [flow_navigation] on, odd reference slots instead navigate through a
     host variable across two statements (alternating SELECT INTO and
     cursor style), so their join has zero single-statement witnesses and
     only the dataflow analysis can recover it *)
  let single_statement_program j k entity =
    Printf.sprintf
      {|
       PROCEDURE DIVISION.
           EXEC SQL
             SELECT %s
             FROM %s, %s
             WHERE %s.%s = %s.%s
           END-EXEC.
|}
      (entity_id entity) (denorm_name j) (entity_name entity) (denorm_name j)
      (ref_attr j k) (entity_name entity) (entity_id entity)
  in
  let select_into_program j k entity =
    Printf.sprintf
      {|
       PROCEDURE DIVISION.
           EXEC SQL
             SELECT %s
             INTO :h-%d-%d
             FROM %s
             WHERE d%d_id = :w-row
           END-EXEC.
           EXEC SQL
             SELECT e%d_name
             FROM %s
             WHERE %s = :h-%d-%d
           END-EXEC.
|}
      (ref_attr j k) j k (denorm_name j) j entity (entity_name entity)
      (entity_id entity) j k
  in
  let cursor_program j k entity =
    Printf.sprintf
      {|
       PROCEDURE DIVISION.
           EXEC SQL DECLARE CUR%d%d CURSOR FOR
             SELECT %s FROM %s WHERE d%d_id > :w-low
           END-EXEC.
           EXEC SQL OPEN CUR%d%d END-EXEC.
           EXEC SQL FETCH CUR%d%d INTO :h-%d-%d END-EXEC.
           EXEC SQL
             SELECT e%d_val FROM %s WHERE %s = :h-%d-%d
           END-EXEC.
           EXEC SQL CLOSE CUR%d%d END-EXEC.
|}
      j k (ref_attr j k) (denorm_name j) j j k j k j k entity
      (entity_name entity) (entity_id entity) j k j k
  in
  let flow_only = ref [] in
  let programs =
    List.concat
      (List.mapi
         (fun j tgt ->
           List.mapi
             (fun k entity ->
               if spec.flow_navigation && k mod 2 = 1 then begin
                 flow_only :=
                   Sqlx.Equijoin.make
                     (denorm_name j, [ ref_attr j k ])
                     (entity_name entity, [ entity_id entity ])
                   :: !flow_only;
                 if k mod 4 = 1 then select_into_program j k entity
                 else cursor_program j k entity
               end
               else single_statement_program j k entity)
             tgt)
         targets)
  in
  {
    db;
    truth =
      {
        planted_inds = List.rev !planted_inds;
        planted_fds = List.rev !planted_fds;
      };
    equijoins = List.rev !equijoins;
    programs;
    dataflow_only_joins = Sqlx.Equijoin.dedupe (List.rev !flow_only);
  }
