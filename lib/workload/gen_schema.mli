(** Synthetic denormalized-schema generator with planted ground truth.

    Generation mimics how the paper says real schemas degrade (§1, §3):
    a clean conceptual design — base {e entity} relations with surrogate
    keys — is denormalized by embedding, in wide "fact" relations, both
    references to entities (future inclusion dependencies) and copies of
    entity payload attributes (future functional dependencies
    [ref -> payload]). The planted dependencies are returned so recovery
    can be measured. *)

open Relational
open Deps

type spec = {
  n_entities : int;  (** base object types *)
  rows_per_entity : int;
  n_denorm : int;  (** wide denormalized relations *)
  refs_per_denorm : int;  (** entity references per denorm relation *)
  payload_per_ref : int;  (** embedded attributes per reference *)
  rows_per_denorm : int;
  null_ref_rate : float;  (** fraction of NULL references *)
  flow_navigation : bool;
      (** when true, odd reference slots navigate through a host
          variable across two statements (alternating [SELECT … INTO]
          and cursor style) instead of writing the join inside one
          query: those joins have zero single-statement witnesses and
          only {!Sqlx.Dataflow} can recover them *)
  seed : int64;
}

val default_spec : spec
(** 4 entities × 1000 rows, 2 denorm relations with 3 refs × 2 payload
    attributes and 2000 rows, 5% NULL refs, single-statement navigation
    only, seed 42. *)

val scale : float -> spec -> spec
(** [scale f spec] multiplies the extension sizes ([rows_per_entity],
    [rows_per_denorm]) by [f], rounding to nearest with a floor of one
    row; schema shape (entities, references, payloads) is untouched, so
    the planted ground truth is the same dependencies over a larger or
    smaller extension. [scale 500. default_spec] yields million-tuple
    denorm extensions. Raises [Invalid_argument] if [f <= 0]. *)

type ground_truth = {
  planted_inds : Ind.t list;  (** [D_j.ref_k ≪ E_i.id], key-based *)
  planted_fds : Fd.t list;  (** [D_j : ref_k -> payload_k*] *)
}

type t = {
  db : Database.t;
  truth : ground_truth;
  equijoins : Sqlx.Equijoin.t list;
      (** the navigation queries an application would issue: one
          equi-join per planted reference *)
  programs : string list;
      (** embedded-SQL program sources realizing those equi-joins *)
  dataflow_only_joins : Sqlx.Equijoin.t list;
      (** the subset of [equijoins] realized only as host-variable
          navigation across statements ([] unless
          [spec.flow_navigation]) — the generator's ground truth for
          what per-statement elicitation must miss and dataflow
          analysis must find *)
}

val generate : spec -> t
(** Deterministic in [spec.seed]. Entity relation [E<i>] has attributes
    [e<i>_id] (key), [e<i>_name], [e<i>_val]; denorm relation [D<j>] has
    a surrogate key [d<j>_id], references [d<j>_ref<k>] and payloads
    [d<j>_ref<k>_p<m>] whose values are functions of the reference. *)
