(* Length-prefixed JSON framing: see protocol.mli. *)

open Relational

let max_frame = 16 * 1024 * 1024

exception Closed
exception Frame_error of string

let rec write_all fd bytes off len =
  if len > 0 then begin
    let n = Unix.write fd bytes off len in
    write_all fd bytes (off + n) (len - n)
  end

let write_frame fd json =
  let payload = Json.to_string json in
  let len = String.length payload in
  if len > max_frame then raise (Frame_error "outgoing frame too large");
  let buf = Bytes.create (4 + len) in
  Bytes.set buf 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set buf 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set buf 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set buf 3 (Char.chr (len land 0xff));
  Bytes.blit_string payload 0 buf 4 len;
  write_all fd buf 0 (4 + len)

(* [exn] is what an EOF here means: [Closed] at a frame boundary,
   [Frame_error] inside one *)
let really_read fd buf off len exn =
  let rec go off len =
    if len > 0 then
      match Unix.read fd buf off len with
      | 0 -> raise exn
      | n -> go (off + n) (len - n)
  in
  go off len

let read_frame fd =
  let hdr = Bytes.create 4 in
  (match Unix.read fd hdr 0 4 with
  | 0 -> raise Closed
  | n -> really_read fd hdr n (4 - n) (Frame_error "truncated frame header"));
  let len =
    (Char.code (Bytes.get hdr 0) lsl 24)
    lor (Char.code (Bytes.get hdr 1) lsl 16)
    lor (Char.code (Bytes.get hdr 2) lsl 8)
    lor Char.code (Bytes.get hdr 3)
  in
  if len > max_frame then
    raise (Frame_error (Printf.sprintf "frame of %d bytes exceeds limit" len));
  let payload = Bytes.create len in
  really_read fd payload 0 len (Frame_error "truncated frame payload");
  Bytes.unsafe_to_string payload

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)

let error ~code message =
  Json.Obj
    [
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          [ ("code", Json.String code); ("message", Json.String message) ] );
    ]

let request op fields = Json.Obj (("op", Json.String op) :: fields)

let error_of response =
  if Json.mem_bool "ok" response = Some true then None
  else
    match Json.member "error" response with
    | Some e -> (
        match (Json.mem_string "code" e, Json.mem_string "message" e) with
        | Some code, Some msg -> Some (code, msg)
        | _ -> Some ("unknown", Json.to_string e))
    | None -> Some ("unknown", Json.to_string response)
