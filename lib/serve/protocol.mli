(** Wire protocol of the analysis daemon.

    Frames are 4-byte big-endian length prefixes followed by that many
    bytes of compact JSON ({!Relational.Json}) — the simplest framing
    that survives pipelining and partial reads on a Unix-domain
    socket. Requests are objects with an ["op"] field; responses are
    objects with ["ok": true] plus op-specific fields, or
    ["ok": false] with a typed ["error": {"code", "message"}].

    {b Operations.}
    - [ping] → [{"ok":true,"pong":true}]
    - [submit {"spec": <Job_spec JSON>}] →
      [{"ok":true,"id","diagnostics":[…]}] — the job is queued; the
      [L207] source/schema disagreements are returned (and streamed as
      events) before the run starts.
    - [status {"id"}] → [{"ok":true,"id","label","state","events",
      "error"}] with [state] one of
      ["queued"|"running"|"done"|"failed"|"cancelled"].
    - [events {"id","since"}] → [{"ok":true,"events":[…],"next",
      "settled"}] — the job's event log from sequence [since]
      (default 0), without blocking.
    - [watch {"id","since"}] — like [events] but long-polls: blocks
      until an event past [since] exists or the job settles. Streaming
      is the client looping on [watch] with the returned ["next"].
    - [cancel {"id"}] → [{"ok":true,"state"}] — cancels a queued job
      outright; trips a running job's supervision token, so it settles
      with a typed partial at the next stage boundary.
    - [artifacts {"id"}] → [{"ok":true,"artifacts":{name:text,…}}] —
      the canonical {!Dbre.Report.artifacts} strings of a settled job.
    - [jobs] → [{"ok":true,"jobs":[{"id","label","state"},…]}]
    - [shutdown] → [{"ok":true}] and the server stops accepting work.

    {b Error codes.} ["bad-frame"] (oversize or truncated frame; the
    connection closes), ["bad-json"] (frame is not JSON),
    ["bad-request"] (JSON but not a valid request), ["unknown-op"],
    ["unknown-job"], ["spec-invalid"], ["not-settled"] (artifacts of a
    live job), ["shutting-down"]. *)

open Relational

val max_frame : int
(** Frames larger than this (16 MiB) are refused with ["bad-frame"]. *)

exception Closed
(** Peer closed the connection at a frame boundary. *)

exception Frame_error of string
(** Malformed framing: truncated header/payload or oversize length.
    Unrecoverable for the connection. *)

val write_frame : Unix.file_descr -> Json.t -> unit
(** Serialize and send one frame (complete write). *)

val read_frame : Unix.file_descr -> string
(** Read one frame's payload. Raises {!Closed} on EOF at a frame
    boundary, {!Frame_error} on truncation mid-frame or an oversize
    announced length. *)

val ok : (string * Json.t) list -> Json.t
(** [{"ok":true, …fields}]. *)

val error : code:string -> string -> Json.t
(** [{"ok":false,"error":{"code","message"}}]. *)

val request : string -> (string * Json.t) list -> Json.t
(** [{"op":<op>, …fields}]. *)

val error_of : Json.t -> (string * string) option
(** [Some (code, message)] when the response is not ["ok": true]. A
    successful response may carry an ["error": null] field (e.g. a
    settled job's status); only ["ok"] decides. *)
