(** Client side of the daemon's wire protocol — used by the CLI's
    [submit]/[job] subcommands and the serve tests. One {!t} is one
    connection; requests on it are synchronous (frame out, frame
    back). *)

open Relational

type t

val connect : string -> t
(** Connect to the daemon's Unix-domain socket. Raises
    [Unix.Unix_error] when nothing listens there. *)

val close : t -> unit

val request : t -> Json.t -> Json.t
(** Send one frame, read one response frame. Raises {!Protocol.Closed}
    if the server hangs up. *)

val ping : t -> bool

val submit :
  t -> Dbre.Job_spec.t -> (string * Json.t list, string * string) result
(** Submit a spec: [Ok (job id, L207 diagnostics)] or
    [Error (code, message)]. Serialization failures (a [Reader]
    source) surface as [Error ("spec-unserializable", …)] without
    touching the wire. *)

val status : t -> string -> (Json.t, string * string) result

val events :
  t -> ?since:int -> string -> (Json.t list * int * bool, string * string) result
(** [(events, next, settled)] without blocking. *)

val watch :
  t -> ?since:int -> string -> (Json.t list * int * bool, string * string) result
(** Long-poll: returns once an event past [since] exists or the job
    settles. Loop on the returned [next] to stream. *)

val cancel : t -> string -> (string, string * string) result
(** The job's state right after the cancel took effect. *)

val artifacts :
  t -> string -> ((string * string) list * string, string * string) result
(** A settled job's canonical artifacts plus its final state;
    [Error ("not-settled", _)] while it is queued or running. *)

val wait :
  t -> ?since:int -> string -> (string * (string * string) list, string * string) result
(** Stream [watch] until the job settles, discarding events, then
    fetch {!artifacts}: [Ok (final state, artifacts)]. *)

val mutate :
  t ->
  ?insert:Value.t list list ->
  ?delete:int list ->
  string ->
  string ->
  (int * int, string * string) result
(** [mutate t ~insert ~delete id relation] mutates a settled job's
    retained extension: [delete] names row indices in the current
    numbering (validated and applied first), [insert] appends rows
    (validated before the deletes are applied — a bad row or index
    mutates nothing). [Ok (cardinality, version)] after the mutation.
    Verdict artifacts are not recomputed until {!refresh}. *)

val refresh :
  t -> string -> (Json.t * string, string * string) result
(** Delta re-verification of a settled, mutated job: replays the
    mutation logs into the memoized stores and re-runs verification,
    synchronously. [Ok (refresh report, final state)]; the job's
    artifacts are replaced with the re-verified ones (byte-identical
    to resubmitting the job over the mutated extension).
    [Error ("not-settled", _)] while the job is queued, running or
    mid-refresh; [Error ("no-database", _)] for jobs adopted from a
    previous daemon process (their extension lives only in checkpoint
    artifacts — resubmit instead). *)

val jobs : t -> (Json.t list, string * string) result

val shutdown : t -> unit
(** Ask the daemon to stop; tolerates the connection dying mid-reply. *)
