(** Client side of the daemon's wire protocol — used by the CLI's
    [submit]/[job] subcommands and the serve tests. One {!t} is one
    connection; requests on it are synchronous (frame out, frame
    back). *)

open Relational

type t

val connect : string -> t
(** Connect to the daemon's Unix-domain socket. Raises
    [Unix.Unix_error] when nothing listens there. *)

val close : t -> unit

val request : t -> Json.t -> Json.t
(** Send one frame, read one response frame. Raises {!Protocol.Closed}
    if the server hangs up. *)

val ping : t -> bool

val submit :
  t -> Dbre.Job_spec.t -> (string * Json.t list, string * string) result
(** Submit a spec: [Ok (job id, L207 diagnostics)] or
    [Error (code, message)]. Serialization failures (a [Reader]
    source) surface as [Error ("spec-unserializable", …)] without
    touching the wire. *)

val status : t -> string -> (Json.t, string * string) result

val events :
  t -> ?since:int -> string -> (Json.t list * int * bool, string * string) result
(** [(events, next, settled)] without blocking. *)

val watch :
  t -> ?since:int -> string -> (Json.t list * int * bool, string * string) result
(** Long-poll: returns once an event past [since] exists or the job
    settles. Loop on the returned [next] to stream. *)

val cancel : t -> string -> (string, string * string) result
(** The job's state right after the cancel took effect. *)

val artifacts :
  t -> string -> ((string * string) list * string, string * string) result
(** A settled job's canonical artifacts plus its final state;
    [Error ("not-settled", _)] while it is queued or running. *)

val wait :
  t -> ?since:int -> string -> (string * (string * string) list, string * string) result
(** Stream [watch] until the job settles, discarding events, then
    fetch {!artifacts}: [Ok (final state, artifacts)]. *)

val jobs : t -> (Json.t list, string * string) result

val shutdown : t -> unit
(** Ask the daemon to stop; tolerates the connection dying mid-reply. *)
