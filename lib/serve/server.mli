(** The analysis daemon: [dbre serve].

    A {!t} listens on a Unix-domain socket, speaks the {!Protocol}
    wire format, and multiplexes submitted {!Dbre.Job_spec.t} jobs
    onto [max_jobs] runner threads. Each job runs under its own
    supervision token ({!Dbre.Job_spec.supervisor}), so [cancel] trips
    exactly one job's budget; actual parallelism inside a job comes
    from its engine's {!Relational.Domain_pool}, which serializes
    whole batches across concurrently running jobs.

    {b Artifacts.} A finished job's artifacts are exactly
    {!Dbre.Report.artifacts} of the {!Dbre.Job.run} result — the same
    function the one-shot CLI renders from — so serve-mode output is
    byte-identical to a local run of the same spec by construction.

    {b Mutation and refresh.} A settled job's loaded database is
    retained in memory: [mutate] appends/deletes rows in a named
    relation (logged in each table's mutation log), and [refresh]
    re-verifies the job against the mutated extension — one
    coordinated delta pass over the memoized column stores
    ({!Dbre.Refresh.database}), checkpoint invalidation, then the
    verification stages re-run, synchronously in the requesting
    connection's handler. The refreshed artifacts are byte-identical
    to resubmitting the job over the mutated data; [status] reports
    the delta-cache statistics behind them. Jobs adopted from a
    previous process hold no database and reject both requests.

    {b Crash recovery.} With a [state_dir], every job's spec and
    status are persisted (atomic rename), the job runs with a
    per-job checkpoint directory inside the state dir, and a finished
    job's artifacts are written there too. A daemon restarted over the
    same [state_dir] re-adopts settled jobs (status and artifacts
    queryable) and re-enqueues jobs that were queued or running when
    the previous daemon died; re-run stages restore from their
    checkpoints ({!Dbre.Pipeline.run_checked}'s resume contract), so
    the artifacts equal an uninterrupted run's, byte for byte.

    The per-job event log (loading, per-stage progress, [L207]
    diagnostics, settlement) is kept in memory and served by
    [events]/[watch]; it is not persisted — a restarted daemon serves
    a settled job's artifacts, not its history. *)

type t

val create :
  ?max_jobs:int -> ?state_dir:string -> socket:string -> unit -> t
(** [max_jobs] (default 2) runner threads; [max_jobs = 0] accepts and
    persists submissions without running them (drained by a restart —
    also how tests stage a "crashed mid-queue" daemon). [state_dir] is
    created if missing and scanned for jobs a previous daemon left
    behind. Nothing is bound until {!start}. *)

val start : t -> unit
(** Bind the socket (an existing file at the path is replaced), spawn
    the acceptor and runner threads, and return. Re-enqueued jobs from
    the state dir start running immediately. *)

val stop : t -> unit
(** Stop accepting connections and new work, wait for running jobs to
    settle, close the socket and join every thread. Queued jobs stay
    queued in the state dir (a later daemon picks them up); without a
    state dir they are lost. Idempotent. *)

val run : t -> unit
(** {!start} then block until a [shutdown] request (or {!stop} from
    another thread) — the CLI entry point. *)

val socket : t -> string
