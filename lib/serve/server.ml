(* The analysis daemon: see server.mli. *)

open Relational

type job_state = Queued | Running | Done | Failed | Cancelled

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Cancelled -> "cancelled"

let settled = function
  | Done | Failed | Cancelled -> true
  | Queued | Running -> false

type entry = {
  id : string;
  spec : Dbre.Job_spec.t;
  mutable supervise : Supervise.t;
      (* replaced with a fresh token per (re-)verification: the original
         may be latched tripped by a cancel or budget from the last run *)
  mutable state : job_state;
  mutable cancel_requested : bool;
  mutable events : Json.t list;  (* newest first *)
  mutable next_seq : int;
  mutable artifacts : (string * string) list;
  mutable error : Json.t;  (* Null until a failure *)
  mutable db : Database.t option;
      (* the loaded database, retained after the run settles so mutate /
         refresh can re-verify without reloading; None until the first
         run's load completes (and for jobs adopted from a state dir,
         whose extension was never this process's) *)
  mutable quarantine : Quarantine.report list;
  mutable refreshes : int;  (* delta re-verifications completed *)
}

type t = {
  socket_path : string;
  state_dir : string option;
  max_jobs : int;
  mutex : Mutex.t;
  cond : Condition.t;
  jobs : (string, entry) Hashtbl.t;
  mutable order : string list;  (* submission order, newest first *)
  mutable queue : string list;  (* pending ids, oldest first *)
  mutable next_id : int;
  mutable stopping : bool;
  mutable shutdown_requested : bool;
  mutable listener : Unix.file_descr option;
  mutable acceptor : Thread.t option;
  mutable workers : Thread.t list;
  mutable handlers : Thread.t list;
  mutable clients : Unix.file_descr list;
}

let socket t = t.socket_path

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* ------------------------------------------------------------------ *)
(* Persistence: state_dir/<id>/{spec.json,status,error,artifacts/,ckpt/} *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* atomic publication: a crash never leaves a half-written status or
   spec behind, only the previous value or the new one *)
let write_file_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp path

let mkdir_p dir =
  let rec go dir =
    if not (Sys.file_exists dir) then begin
      go (Filename.dirname dir);
      try Sys.mkdir dir 0o755 with Sys_error _ -> ()
    end
  in
  go dir

let job_dir t id =
  Option.map (fun dir -> Filename.concat dir id) t.state_dir

let persist_status t entry =
  match job_dir t entry.id with
  | None -> ()
  | Some dir -> (
      try
        write_file_atomic
          (Filename.concat dir "status")
          (state_to_string entry.state);
        if entry.error <> Json.Null then
          write_file_atomic
            (Filename.concat dir "error")
            (Json.to_string entry.error);
        if settled entry.state && entry.artifacts <> [] then begin
          let adir = Filename.concat dir "artifacts" in
          mkdir_p adir;
          List.iter
            (fun (name, text) ->
              write_file_atomic (Filename.concat adir name) text)
            entry.artifacts
        end
      with Sys_error _ -> ())

let persist_spec t entry =
  match job_dir t entry.id with
  | None -> ()
  | Some dir -> (
      match Dbre.Job_spec.to_string entry.spec with
      | Error _ -> ()  (* unserializable (Reader) jobs are session-only *)
      | Ok text -> (
          try
            mkdir_p dir;
            write_file_atomic (Filename.concat dir "spec.json") text;
            persist_status t entry
          with Sys_error _ -> ()))

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

let error_json (e : Error.t) =
  Json.Obj
    ([ ("code", Json.String (Error.code_to_string e.Error.code)) ]
    @ (match e.Error.stage with
      | Some s -> [ ("stage", Json.String (Error.stage_to_string s)) ]
      | None -> [])
    @ (match e.Error.relation with
      | Some r -> [ ("relation", Json.String r) ]
      | None -> [])
    @ [ ("message", Json.String e.Error.message) ])

(* caller holds the lock *)
let push_event t entry fields =
  let seq = entry.next_seq in
  entry.next_seq <- seq + 1;
  entry.events <- Json.Obj (("seq", Json.Int seq) :: fields) :: entry.events;
  Condition.broadcast t.cond

let job_event = function
  | Dbre.Job.Loading rel ->
      [ ("kind", Json.String "loading"); ("relation", Json.String rel) ]
  | Dbre.Job.Loaded (rel, rows) ->
      [
        ("kind", Json.String "loaded");
        ("relation", Json.String rel);
        ("rows", Json.Int rows);
      ]
  | Dbre.Job.Stage ev ->
      let phase stage name =
        [
          ("kind", Json.String "stage");
          ("stage", Json.String (Error.stage_to_string stage));
          ("phase", Json.String name);
        ]
      in
      (match ev with
      | Dbre.Pipeline.Stage_started s -> phase s "started"
      | Dbre.Pipeline.Stage_restored s -> phase s "restored"
      | Dbre.Pipeline.Stage_finished s -> phase s "finished"
      | Dbre.Pipeline.Stage_failed (s, e) ->
          phase s "failed" @ [ ("error", error_json e) ])

let diagnostic_json (d : Dbre_lint.Diagnostic.t) =
  Json.Obj
    [
      ("kind", Json.String "diagnostic");
      ("code", Json.String d.Dbre_lint.Diagnostic.code);
      ( "severity",
        Json.String
          (Dbre_lint.Diagnostic.severity_to_string
             d.Dbre_lint.Diagnostic.severity) );
      ("message", Json.String d.Dbre_lint.Diagnostic.message);
    ]

(* ------------------------------------------------------------------ *)
(* Runner threads                                                      *)
(* ------------------------------------------------------------------ *)

let settle t entry state =
  locked t (fun () ->
      entry.state <- state;
      push_event t entry
        [
          ("kind", Json.String "settled");
          ("state", Json.String (state_to_string state));
        ];
      persist_status t entry;
      Condition.broadcast t.cond)

(* the daemon always checkpoints into its state dir (unless the spec
   pins its own directory) and always offers resume: a fresh job
   restores nothing, a job re-adopted after a crash restores every
   stage its previous incarnation completed *)
let effective_spec t entry =
  match (job_dir t entry.id, entry.spec.Dbre.Job_spec.checkpoint_dir) with
  | Some dir, None ->
      {
        entry.spec with
        Dbre.Job_spec.checkpoint_dir = Some (Filename.concat dir "ckpt");
        resume = true;
      }
  | _ -> entry.spec

let settle_result t entry result =
  match result with
  | Ok result ->
      entry.artifacts <- Dbre.Report.artifacts result;
      entry.error <- Json.Null;
      settle t entry (if entry.cancel_requested then Cancelled else Done)
  | Error partial ->
      entry.error <- error_json partial.Dbre.Pipeline.p_error;
      settle t entry (if entry.cancel_requested then Cancelled else Failed)

let run_entry t entry =
  locked t (fun () ->
      entry.state <- Running;
      persist_status t entry);
  let spec = effective_spec t entry in
  let progress ev = locked t (fun () -> push_event t entry (job_event ev)) in
  try
    match Dbre.Job.database ~supervise:entry.supervise ~progress spec with
    | Error e ->
        entry.error <- error_json e;
        settle t entry (if entry.cancel_requested then Cancelled else Failed)
    | Ok (db, quarantine) ->
        (* retain the loaded database: mutate / refresh re-verify it
           in place instead of reloading *)
        locked t (fun () ->
            entry.db <- Some db;
            entry.quarantine <- quarantine);
        settle_result t entry
          (Dbre.Job.verify ~progress ~supervise:entry.supervise ~db
             ~quarantine spec)
  with exn ->
    entry.error <-
      Json.Obj
        [
          ("code", Json.String "crashed");
          ("message", Json.String (Printexc.to_string exn));
        ];
    settle t entry Failed

let rec worker t =
  let job =
    locked t (fun () ->
        let rec wait () =
          if t.stopping then None
          else
            match t.queue with
            | id :: rest ->
                t.queue <- rest;
                Hashtbl.find_opt t.jobs id
            | [] ->
                Condition.wait t.cond t.mutex;
                wait ()
        in
        wait ())
  in
  match job with
  | None -> ()
  | Some entry ->
      (* a job cancelled while still queued settles without running *)
      if entry.cancel_requested then settle t entry Cancelled
      else run_entry t entry;
      worker t

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let fresh_id t =
  let id = Printf.sprintf "job-%06d" t.next_id in
  t.next_id <- t.next_id + 1;
  id

let enqueue t entry =
  Hashtbl.replace t.jobs entry.id entry;
  t.order <- entry.id :: t.order;
  t.queue <- t.queue @ [ entry.id ];
  Condition.broadcast t.cond

let submit t spec_json =
  match Dbre.Job_spec.of_json spec_json with
  | Error msg -> Protocol.error ~code:"spec-invalid" msg
  | Ok spec ->
      let diags = Dbre_lint.Rules_verify.check_job spec in
      locked t (fun () ->
          if t.stopping || t.shutdown_requested then
            Protocol.error ~code:"shutting-down"
              "the server is shutting down and accepts no new jobs"
          else begin
            let entry =
              {
                id = fresh_id t;
                spec;
                supervise = Dbre.Job_spec.supervisor spec;
                state = Queued;
                cancel_requested = false;
                events = [];
                next_seq = 0;
                artifacts = [];
                error = Json.Null;
                db = None;
                quarantine = [];
                refreshes = 0;
              }
            in
            (* surface the source/schema lint before any work happens:
               in the event stream and in the submit response *)
            List.iter
              (fun d ->
                match diagnostic_json d with
                | Json.Obj fields -> push_event t entry fields
                | _ -> ())
              diags;
            persist_spec t entry;
            enqueue t entry;
            Protocol.ok
              [
                ("id", Json.String entry.id);
                ("diagnostics", Json.List (List.map diagnostic_json diags));
              ]
          end)

let find t id =
  match id with
  | None -> Error (Protocol.error ~code:"bad-request" "missing \"id\"")
  | Some id -> (
      match Hashtbl.find_opt t.jobs id with
      | Some e -> Ok e
      | None -> Error (Protocol.error ~code:"unknown-job" id))

(* per-table segment residency of the loaded database's memoized
   stores: which sealed segments exist, which are warm, which live on
   disk, and at what pack widths *)
let residency_json db =
  match db with
  | None -> Json.Null
  | Some db ->
      Json.List
        (List.filter_map
           (fun (rel : Relation.t) ->
             match Database.table_opt db rel.Relation.name with
             | None -> None
             | Some tbl -> (
                 match Table.ext_cache tbl with
                 | Some (Column_store.Store s) ->
                     let r = Column_store.residency s in
                     Some
                       (Json.Obj
                          [
                            ("table", Json.String rel.Relation.name);
                            ( "sealed_segments",
                              Json.Int r.Column_store.sealed_segments );
                            ( "resident_segments",
                              Json.Int r.Column_store.resident_segments );
                            ( "spilled_segments",
                              Json.Int r.Column_store.spilled_segments );
                            ("tail_rows", Json.Int r.Column_store.tail_rows);
                            ( "width_histogram",
                              Json.Obj
                                (List.map
                                   (fun (w, n) ->
                                     (string_of_int w, Json.Int n))
                                   r.Column_store.width_histogram) );
                          ])
                 | _ -> None))
           (Schema.relations (Database.schema db)))

let status_fields entry =
  let d = Column_store.delta_stats () in
  let oc = Ooc.config () in
  let os = Ooc.stats () in
  [
    ("id", Json.String entry.id);
    ("label", Json.opt_string entry.spec.Dbre.Job_spec.label);
    ("state", Json.String (state_to_string entry.state));
    ("events", Json.Int entry.next_seq);
    ("error", entry.error);
    ("refreshes", Json.Int entry.refreshes);
    ( "delta",
      (* the delta-cache statistics behind this job's verdicts: the
         fallback fraction in effect plus the process-wide maintenance
         counters (Column_store.delta_stats) *)
      Json.Obj
        [
          ( "fraction",
            Json.Float entry.spec.Dbre.Job_spec.engine.Engine.delta_fraction
          );
          ("rows_absorbed", Json.Int d.Column_store.rows_absorbed);
          ( "incremental_refreshes",
            Json.Int d.Column_store.incremental_refreshes );
          ("full_rebuilds", Json.Int d.Column_store.full_rebuilds);
        ] );
    ( "ooc",
      (* the process-wide out-of-core policy and its counters, plus the
         per-store segment residency of this job's database *)
      Json.Obj
        [
          ("segment_rows", Json.Int oc.Ooc.segment_rows);
          ("spill_dir", Json.opt_string oc.Ooc.spill_dir);
          ( "resident_budget_words",
            match oc.Ooc.resident_budget_words with
            | Some w -> Json.Int w
            | None -> Json.Null );
          ("zone_pruning", Json.Bool oc.Ooc.zone_pruning);
          ("resident_segments", Json.Int os.Ooc.resident_segments);
          ("resident_words", Json.Int os.Ooc.resident_words);
          ("spill_writes", Json.Int os.Ooc.spill_writes);
          ("map_loads", Json.Int os.Ooc.map_loads);
          ("evictions", Json.Int os.Ooc.evictions);
          ("zone_segments_skipped", Json.Int os.Ooc.zone_segments_skipped);
          ("zone_segments_swept", Json.Int os.Ooc.zone_segments_swept);
          ( "ind_zone_short_circuits",
            Json.Int os.Ooc.ind_zone_short_circuits );
          ("stores", residency_json entry.db);
        ] );
  ]

(* JSON scalars map to values the way CSV fields do: explicit typed
   scalars directly, strings through the same most-specific-type guess
   the loader applies — so a mutated row is indistinguishable from one
   that arrived in the original extension *)
let value_of_json = function
  | Json.Null -> Ok Value.Null
  | Json.Bool b -> Ok (Value.Bool b)
  | Json.Int i -> Ok (Value.Int i)
  | Json.Float f -> Ok (Value.Float f)
  | Json.String s -> Ok (Value.parse s)
  | Json.List _ | Json.Obj _ -> Error "row cells must be JSON scalars"

let rows_of_json rows =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | Json.List cells :: rest -> (
        let rec cells_go vacc = function
          | [] -> Ok (List.rev vacc)
          | c :: cs -> (
              match value_of_json c with
              | Ok v -> cells_go (v :: vacc) cs
              | Error _ as e -> e)
        in
        match cells_go [] cells with
        | Ok row -> go (row :: acc) rest
        | Error _ as e -> e)
    | _ -> Error "\"insert\" must be a list of rows (lists of scalars)"
  in
  go [] rows

let indices_of_json idxs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | Json.Int i :: rest -> go (i :: acc) rest
    | _ -> Error "\"delete\" must be a list of row indices"
  in
  go [] idxs

(* caller holds the lock; entry is settled and its database present *)
let apply_mutation t entry db request =
  match Json.mem_string "relation" request with
  | None -> Protocol.error ~code:"bad-request" "mutate needs \"relation\""
  | Some rel -> (
      match Database.table_opt db rel with
      | None -> Protocol.error ~code:"unknown-relation" rel
      | Some table -> (
          let inserts =
            Option.value ~default:[] (Json.mem_list "insert" request)
          in
          let deletes =
            Option.value ~default:[] (Json.mem_list "delete" request)
          in
          match (rows_of_json inserts, indices_of_json deletes) with
          | Error msg, _ | _, Error msg ->
              Protocol.error ~code:"bad-request" msg
          | Ok rows, Ok idxs -> (
              let arity = Relation.arity (Table.schema table) in
              match
                List.find_opt (fun r -> List.length r <> arity) rows
              with
              | Some bad ->
                  Protocol.error ~code:"bad-request"
                    (Printf.sprintf
                       "%s: arity mismatch (%d cells, expected %d)" rel
                       (List.length bad) arity)
              | None -> (
                  (* deletes address the pre-mutation numbering and are
                     validated (and applied) before the appends; a bad
                     index leaves the table untouched *)
                  match Table.delete_rows table idxs with
                  | exception Invalid_argument msg ->
                      Protocol.error ~code:"bad-request" msg
                  | () ->
                      Table.insert_many table rows;
                      push_event t entry
                        [
                          ("kind", Json.String "mutated");
                          ("relation", Json.String rel);
                          ("inserted", Json.Int (List.length rows));
                          ("deleted", Json.Int (List.length idxs));
                        ];
                      Protocol.ok
                        [
                          ("relation", Json.String rel);
                          ("cardinality", Json.Int (Table.cardinality table));
                          ("version", Json.Int (Table.version table));
                          ("inserted", Json.Int (List.length rows));
                          ("deleted", Json.Int (List.length idxs));
                        ]))))

let refresh_report_json (r : Dbre.Refresh.report) =
  Json.Obj
    [
      ("fresh", Json.Int r.Dbre.Refresh.fresh);
      ("incremental", Json.Int r.Dbre.Refresh.absorbed);
      ("rebuilt", Json.Int r.Dbre.Refresh.rebuilt);
      ("rows_applied", Json.Int r.Dbre.Refresh.rows_applied);
      ( "relations",
        Json.Obj
          (List.map
             (fun (name, o) ->
               ( name,
                 Json.String
                   (Format.asprintf "%a" Dbre.Refresh.pp_outcome o) ))
             r.Dbre.Refresh.relations) );
    ]

(* Synchronous delta re-verification of a settled job, in the handler
   thread: claim the entry (Running) under the lock, run the refresh
   outside it, settle, reply with the refresh report and final state. *)
let refresh_job t id =
  let claim =
    locked t (fun () ->
        match find t id with
        | Error e -> Error e
        | Ok entry ->
            if t.stopping || t.shutdown_requested then
              Error
                (Protocol.error ~code:"shutting-down"
                   "the server is shutting down and accepts no new work")
            else if not (settled entry.state) then
              Error
                (Protocol.error ~code:"not-settled"
                   (Printf.sprintf "job %s is %s" entry.id
                      (state_to_string entry.state)))
            else
              match entry.db with
              | None ->
                  Error
                    (Protocol.error ~code:"no-database"
                       (Printf.sprintf
                          "job %s holds no loaded database (adopted from a \
                           previous process?) — resubmit it instead"
                          entry.id))
              | Some db ->
                  entry.state <- Running;
                  entry.cancel_requested <- false;
                  (* the previous token may be latched (cancel, budget) *)
                  entry.supervise <- Dbre.Job_spec.supervisor entry.spec;
                  push_event t entry
                    [ ("kind", Json.String "refresh-started") ];
                  persist_status t entry;
                  Ok (entry, db))
  in
  match claim with
  | Error e -> e
  | Ok (entry, db) -> (
      let spec = effective_spec t entry in
      let progress ev =
        locked t (fun () -> push_event t entry (job_event ev))
      in
      match
        Dbre.Job.refresh ~progress ~supervise:entry.supervise ~db
          ~quarantine:entry.quarantine spec
      with
      | report, result ->
          locked t (fun () ->
              entry.refreshes <- entry.refreshes + 1;
              push_event t entry
                (("kind", Json.String "refreshed")
                :: [ ("report", refresh_report_json report) ]));
          settle_result t entry result;
          locked t (fun () ->
              Protocol.ok
                (("report", refresh_report_json report)
                :: status_fields entry))
      | exception exn ->
          entry.error <-
            Json.Obj
              [
                ("code", Json.String "crashed");
                ("message", Json.String (Printexc.to_string exn));
              ];
          settle t entry Failed;
          Protocol.error ~code:"crashed" (Printexc.to_string exn))

let events_since entry since =
  List.filter
    (fun ev ->
      match Json.mem_int "seq" ev with Some s -> s >= since | None -> false)
    (List.rev entry.events)

let events_response entry since =
  Protocol.ok
    [
      ("events", Json.List (events_since entry since));
      ("next", Json.Int entry.next_seq);
      ("settled", Json.Bool (settled entry.state));
    ]

let handle t request =
  match Json.mem_string "op" request with
  | None ->
      Protocol.error ~code:"bad-request" "request object has no \"op\" field"
  | Some op -> (
      let id = Json.mem_string "id" request in
      match op with
      | "ping" -> Protocol.ok [ ("pong", Json.Bool true) ]
      | "submit" -> (
          match Json.member "spec" request with
          | None -> Protocol.error ~code:"bad-request" "submit needs \"spec\""
          | Some spec -> submit t spec)
      | "status" ->
          locked t (fun () ->
              match find t id with
              | Error e -> e
              | Ok entry -> Protocol.ok (status_fields entry))
      | "events" ->
          let since =
            Option.value ~default:0 (Json.mem_int "since" request)
          in
          locked t (fun () ->
              match find t id with
              | Error e -> e
              | Ok entry -> events_response entry since)
      | "watch" ->
          let since =
            Option.value ~default:0 (Json.mem_int "since" request)
          in
          locked t (fun () ->
              match find t id with
              | Error e -> e
              | Ok entry ->
                  let rec wait () =
                    if
                      entry.next_seq > since
                      || settled entry.state
                      || t.stopping
                    then events_response entry since
                    else begin
                      Condition.wait t.cond t.mutex;
                      wait ()
                    end
                  in
                  wait ())
      | "mutate" ->
          locked t (fun () ->
              match find t id with
              | Error e -> e
              | Ok entry -> (
                  if not (settled entry.state) then
                    Protocol.error ~code:"not-settled"
                      (Printf.sprintf "job %s is %s" entry.id
                         (state_to_string entry.state))
                  else
                    match entry.db with
                    | None ->
                        Protocol.error ~code:"no-database"
                          (Printf.sprintf
                             "job %s holds no loaded database (adopted from \
                              a previous process?) — resubmit it instead"
                             entry.id)
                    | Some db -> apply_mutation t entry db request))
      | "refresh" -> refresh_job t id
      | "cancel" ->
          locked t (fun () ->
              match find t id with
              | Error e -> e
              | Ok entry ->
                  if not (settled entry.state) then begin
                    entry.cancel_requested <- true;
                    Supervise.cancel entry.supervise;
                    (* a queued job settles right here; a running one
                       settles when its runner observes the trip *)
                    if entry.state = Queued then begin
                      t.queue <-
                        List.filter (fun i -> i <> entry.id) t.queue;
                      entry.state <- Cancelled;
                      push_event t entry
                        [
                          ("kind", Json.String "settled");
                          ("state", Json.String "cancelled");
                        ];
                      persist_status t entry;
                      Condition.broadcast t.cond
                    end
                  end;
                  Protocol.ok
                    [ ("state", Json.String (state_to_string entry.state)) ])
      | "artifacts" ->
          locked t (fun () ->
              match find t id with
              | Error e -> e
              | Ok entry ->
                  if not (settled entry.state) then
                    Protocol.error ~code:"not-settled"
                      (Printf.sprintf "job %s is %s" entry.id
                         (state_to_string entry.state))
                  else
                    Protocol.ok
                      [
                        ( "artifacts",
                          Json.Obj
                            (List.map
                               (fun (name, text) -> (name, Json.String text))
                               entry.artifacts) );
                        ("state", Json.String (state_to_string entry.state));
                        ("error", entry.error);
                      ])
      | "jobs" ->
          locked t (fun () ->
              Protocol.ok
                [
                  ( "jobs",
                    Json.List
                      (List.rev_map
                         (fun id ->
                           match Hashtbl.find_opt t.jobs id with
                           | Some e -> Json.Obj (status_fields e)
                           | None -> Json.Null)
                         t.order) );
                ])
      | "shutdown" ->
          locked t (fun () ->
              t.shutdown_requested <- true;
              Condition.broadcast t.cond);
          Protocol.ok []
      | op -> Protocol.error ~code:"unknown-op" op)

let handle_connection t fd =
  let rec loop () =
    match Protocol.read_frame fd with
    | exception Protocol.Closed -> ()
    | exception Protocol.Frame_error msg ->
        (* framing is broken: report once and drop the connection (we
           can no longer find the next frame boundary) *)
        (try Protocol.write_frame fd (Protocol.error ~code:"bad-frame" msg)
         with _ -> ())
    | exception Unix.Unix_error _ -> ()
    | payload ->
        let response =
          match Json.of_string payload with
          | exception Json.Parse_error msg ->
              Protocol.error ~code:"bad-json" msg
          | Json.Obj _ as request -> handle t request
          | _ ->
              Protocol.error ~code:"bad-request"
                "request frame must be a JSON object"
        in
        (match Protocol.write_frame fd response with
        | () -> loop ()
        | exception _ -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      locked t (fun () ->
          t.clients <- List.filter (fun c -> c <> fd) t.clients))
    loop

let acceptor t listener =
  let rec loop () =
    match Unix.accept listener with
    | exception Unix.Unix_error _ -> ()  (* listener closed: stopping *)
    | fd, _ ->
        let continue =
          locked t (fun () ->
              if t.stopping then begin
                (try Unix.close fd with Unix.Unix_error _ -> ());
                false
              end
              else begin
                t.clients <- fd :: t.clients;
                t.handlers <-
                  Thread.create (handle_connection t) fd :: t.handlers;
                true
              end)
        in
        if continue then loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* State-dir adoption                                                  *)
(* ------------------------------------------------------------------ *)

let adopt_state t =
  match t.state_dir with
  | None -> ()
  | Some dir when not (Sys.file_exists dir) -> mkdir_p dir
  | Some dir ->
      let ids =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun id ->
               String.length id > 4
               && String.sub id 0 4 = "job-"
               && Sys.file_exists
                    (Filename.concat (Filename.concat dir id) "spec.json"))
        |> List.sort String.compare
      in
      List.iter
        (fun id ->
          let jdir = Filename.concat dir id in
          match Dbre.Job_spec.of_string (read_file (Filename.concat jdir "spec.json")) with
          | exception Sys_error _ -> ()
          | Error _ -> ()
          | Ok spec ->
              (* keep the id counter ahead of every adopted job *)
              (match
                 int_of_string_opt (String.sub id 4 (String.length id - 4))
               with
              | Some n when n >= t.next_id -> t.next_id <- n + 1
              | _ -> ());
              let status =
                match read_file (Filename.concat jdir "status") with
                | s -> s
                | exception Sys_error _ -> "queued"
              in
              let state =
                match status with
                | "done" -> Done
                | "failed" -> Failed
                | "cancelled" -> Cancelled
                | _ -> Queued  (* queued or running: the crash lost it *)
              in
              let artifacts =
                let adir = Filename.concat jdir "artifacts" in
                if settled state && Sys.file_exists adir then
                  Sys.readdir adir |> Array.to_list |> List.sort compare
                  |> List.filter_map (fun name ->
                         match read_file (Filename.concat adir name) with
                         | text -> Some (name, text)
                         | exception Sys_error _ -> None)
                else []
              in
              let error =
                let epath = Filename.concat jdir "error" in
                if Sys.file_exists epath then
                  match Json.of_string (read_file epath) with
                  | j -> j
                  | exception _ -> Json.Null
                else Json.Null
              in
              let entry =
                {
                  id;
                  spec;
                  supervise = Dbre.Job_spec.supervisor spec;
                  state;
                  cancel_requested = false;
                  events = [];
                  next_seq = 0;
                  artifacts;
                  error;
                  db = None;
                  quarantine = [];
                  refreshes = 0;
                }
              in
              Hashtbl.replace t.jobs id entry;
              t.order <- id :: t.order;
              if state = Queued then begin
                entry.state <- Queued;
                persist_status t entry;
                t.queue <- t.queue @ [ id ]
              end)
        ids

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create ?(max_jobs = 2) ?state_dir ~socket () =
  {
    socket_path = socket;
    state_dir;
    max_jobs;
    mutex = Mutex.create ();
    cond = Condition.create ();
    jobs = Hashtbl.create 16;
    order = [];
    queue = [];
    next_id = 1;
    stopping = false;
    shutdown_requested = false;
    listener = None;
    acceptor = None;
    workers = [];
    handlers = [];
    clients = [];
  }

let start t =
  (* a peer hanging up mid-reply must surface as EPIPE, not kill the
     daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  adopt_state t;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ());
  Unix.bind listener (Unix.ADDR_UNIX t.socket_path);
  Unix.listen listener 16;
  t.listener <- Some listener;
  t.acceptor <- Some (Thread.create (acceptor t) listener);
  t.workers <-
    List.init t.max_jobs (fun _ -> Thread.create worker t)

let stop t =
  let already =
    locked t (fun () ->
        let was = t.stopping in
        t.stopping <- true;
        Condition.broadcast t.cond;
        was)
  in
  if not already then begin
    (* closing a listener does not reliably wake a thread blocked in
       accept(2): poke it with a throwaway connection instead — the
       acceptor sees [stopping] and exits *)
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.socket_path)
        with Unix.Unix_error _ -> ());
       try Unix.close fd with Unix.Unix_error _ -> ()
     with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.acceptor;
    t.acceptor <- None;
    (match t.listener with
    | Some fd ->
        t.listener <- None;
        (try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    (* unblock handler threads parked in read *)
    locked t (fun () ->
        List.iter
          (fun fd ->
            try Unix.shutdown fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ())
          t.clients);
    List.iter Thread.join t.workers;
    t.workers <- [];
    let handlers = locked t (fun () -> t.handlers) in
    List.iter Thread.join handlers;
    t.handlers <- [];
    try Unix.unlink t.socket_path with Unix.Unix_error _ | Sys_error _ -> ()
  end

let run t =
  start t;
  locked t (fun () ->
      while not (t.shutdown_requested || t.stopping) do
        Condition.wait t.cond t.mutex
      done);
  stop t
