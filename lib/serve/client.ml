(* Client of the daemon's wire protocol: see client.mli. *)

open Relational

type t = { fd : Unix.file_descr }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let request t json =
  Protocol.write_frame t.fd json;
  Json.of_string (Protocol.read_frame t.fd)

let result_of response fields =
  match Protocol.error_of response with
  | Some (code, msg) -> Error (code, msg)
  | None -> Ok (fields response)

let ping t =
  match request t (Protocol.request "ping" []) with
  | response -> Json.mem_bool "pong" response = Some true
  | exception _ -> false

let submit t spec =
  match Dbre.Job_spec.to_json spec with
  | Error msg -> Error ("spec-unserializable", msg)
  | Ok spec_json ->
      let response =
        request t (Protocol.request "submit" [ ("spec", spec_json) ])
      in
      result_of response (fun r ->
          ( Option.value ~default:"" (Json.mem_string "id" r),
            Option.value ~default:[] (Json.mem_list "diagnostics" r) ))

let status t id =
  let response =
    request t (Protocol.request "status" [ ("id", Json.String id) ])
  in
  result_of response Fun.id

let events_shape r =
  ( Option.value ~default:[] (Json.mem_list "events" r),
    Option.value ~default:0 (Json.mem_int "next" r),
    Json.mem_bool "settled" r = Some true )

let events t ?(since = 0) id =
  let response =
    request t
      (Protocol.request "events"
         [ ("id", Json.String id); ("since", Json.Int since) ])
  in
  result_of response events_shape

let watch t ?(since = 0) id =
  let response =
    request t
      (Protocol.request "watch"
         [ ("id", Json.String id); ("since", Json.Int since) ])
  in
  result_of response events_shape

let cancel t id =
  let response =
    request t (Protocol.request "cancel" [ ("id", Json.String id) ])
  in
  result_of response (fun r ->
      Option.value ~default:"" (Json.mem_string "state" r))

let artifacts t id =
  let response =
    request t (Protocol.request "artifacts" [ ("id", Json.String id) ])
  in
  result_of response (fun r ->
      let artifacts =
        match Json.member "artifacts" r with
        | Some (Json.Obj fields) ->
            List.filter_map
              (fun (name, v) ->
                Option.map (fun text -> (name, text)) (Json.to_string_opt v))
              fields
        | _ -> []
      in
      (artifacts, Option.value ~default:"" (Json.mem_string "state" r)))

let rec wait t ?(since = 0) id =
  match watch t ~since id with
  | Error _ as e -> e
  | Ok (_, next, settled) ->
      if settled then
        match artifacts t id with
        | Error _ as e -> e
        | Ok (arts, state) -> Ok (state, arts)
      else wait t ~since:next id

let value_to_json = function
  | Value.Null -> Json.Null
  | Value.Bool b -> Json.Bool b
  | Value.Int i -> Json.Int i
  | Value.Float f -> Json.Float f
  | Value.String s -> Json.String s
  | Value.Date _ as v -> Json.String (Value.to_string v)

let mutate t ?(insert = []) ?(delete = []) id relation =
  let response =
    request t
      (Protocol.request "mutate"
         [
           ("id", Json.String id);
           ("relation", Json.String relation);
           ( "insert",
             Json.List
               (List.map
                  (fun row -> Json.List (List.map value_to_json row))
                  insert) );
           ("delete", Json.List (List.map (fun i -> Json.Int i) delete));
         ])
  in
  result_of response (fun r ->
      ( Option.value ~default:0 (Json.mem_int "cardinality" r),
        Option.value ~default:0 (Json.mem_int "version" r) ))

let refresh t id =
  let response =
    request t (Protocol.request "refresh" [ ("id", Json.String id) ])
  in
  result_of response (fun r ->
      ( Option.value ~default:Json.Null (Json.member "report" r),
        Option.value ~default:"" (Json.mem_string "state" r) ))

let jobs t =
  let response = request t (Protocol.request "jobs" []) in
  result_of response (fun r ->
      Option.value ~default:[] (Json.mem_list "jobs" r))

let shutdown t =
  try ignore (request t (Protocol.request "shutdown" []))
  with Protocol.Closed | Protocol.Frame_error _ | Unix.Unix_error _ -> ()
