(* Verify_plan + Domain_pool: the batching planner must return exactly
   what the naive per-candidate engine returns — FD verdicts in RHS
   order, IND count triples in probe order, identical NEI decisions —
   on NULL-heavy and scaled extensions, including right after an insert
   cleared the Table.ext store cache; and the pool must fall back to
   in-order sequential execution on one domain, preserve result order
   on many, and propagate task exceptions.

   Deterministic by construction: tables come from seeded Workload.Rng
   streams and Workload.Gen_schema specs. *)

open Helpers
open Relational
open Deps
module Rng = Workload.Rng

let batched_engines =
  [
    ("partition", Engine.partition);
    ("columnar", Engine.columnar);
    ("columnar-uncached", Engine.make ~cache:Engine.Cache_off ());
    ("parallel:2", Engine.parallel ~domains:2 ());
    ("parallel:4", Engine.parallel ~domains:4 ());
  ]

let random_table rng ?(null_rate = 0.15) name attrs n_rows =
  let cell rng i =
    if Rng.chance rng null_rate then Value.Null
    else if i mod 2 = 0 then Value.Int (Rng.int rng 4)
    else Value.String (Rng.pick rng [ "x"; "y"; "z" ])
  in
  let rows =
    List.init n_rows (fun _ -> List.mapi (fun i _ -> cell rng i) attrs)
  in
  table name attrs rows

let attrs6 = [ "a"; "b"; "c"; "d"; "e"; "f" ]

(* ---------- fd_group vs per-candidate naive ---------- *)

let per_candidate_naive table lhs rhs =
  List.map
    (fun b ->
      ( b,
        Fd_infer.holds ~engine:Engine.naive table
          (Fd.make (Table.schema table).Relation.name lhs [ b ]) ))
    rhs

let test_fd_group_matches_naive () =
  let rng = Rng.create 31L in
  for round = 1 to 30 do
    let null_rate = if round mod 2 = 0 then 0.45 else 0.1 in
    let t = random_table rng ~null_rate "T" attrs6 (Rng.int_in rng 0 50) in
    for _ = 1 to 4 do
      let k = Rng.int_in rng 1 2 in
      let lhs = List.sort String.compare (Rng.sample rng k attrs6) in
      let rhs = List.filter (fun a -> not (List.mem a lhs)) attrs6 in
      let expected = per_candidate_naive t lhs rhs in
      (* the Naive engine goes through the genuinely-unbatched planner
         path and must agree too *)
      List.iter
        (fun (name, engine) ->
          Alcotest.(check (list (pair string bool)))
            (Printf.sprintf "round %d: fd_group via %s (lhs=%s)" round name
               (String.concat "," lhs))
            expected
            (Dbre.Verify_plan.fd_group ~engine t ~lhs ~rhs))
        (("naive", Engine.naive) :: batched_engines)
    done
  done

(* batch verdicts must not depend on what an earlier batch memoized:
   interleave single checks and batches against one shared store *)
let test_fd_batch_memo_consistent () =
  let rng = Rng.create 37L in
  for round = 1 to 20 do
    let t = random_table rng ~null_rate:0.3 "T" attrs6 (Rng.int_in rng 1 40) in
    let lhs = [ Rng.pick rng attrs6 ] in
    let rhs = List.filter (fun a -> not (List.mem a lhs)) attrs6 in
    let engine = Engine.columnar in
    (* warm a strict subset of the verdicts through single checks *)
    List.iteri
      (fun i b ->
        if i mod 2 = 0 then
          ignore
            (Fd_infer.holds ~engine t (Fd.make "T" lhs [ b ])))
      rhs;
    Alcotest.(check (list (pair string bool)))
      (Printf.sprintf "round %d: batch over part-memoized store" round)
      (per_candidate_naive t lhs rhs)
      (Dbre.Verify_plan.fd_group ~engine t ~lhs ~rhs)
  done

(* ---------- ind_batch vs per-probe naive ---------- *)

let naive_counts db probes =
  List.map
    (fun (l, r) ->
      ( Database.count_distinct ~engine:Engine.naive db (fst l) (snd l),
        Database.count_distinct ~engine:Engine.naive db (fst r) (snd r),
        Database.join_count ~engine:Engine.naive db l r ))
    probes

let triples counts =
  List.map
    (fun (c : Dbre.Verify_plan.counts) ->
      (c.Dbre.Verify_plan.n_left, c.n_right, c.n_join))
    counts

let test_ind_batch_matches_naive () =
  let rng = Rng.create 41L in
  let attrs_l = [ "a"; "b"; "c" ] and attrs_r = [ "u"; "v"; "w" ] in
  for round = 1 to 25 do
    let null_rate = if round mod 2 = 0 then 0.4 else 0.1 in
    let t1 = random_table rng ~null_rate "L" attrs_l (Rng.int_in rng 0 40) in
    let t2 = random_table rng ~null_rate "R" attrs_r (Rng.int_in rng 0 40) in
    let schema = Schema.of_relations [ Table.schema t1; Table.schema t2 ] in
    let db = Database.create schema in
    Database.replace_table db t1;
    Database.replace_table db t2;
    (* repeated sides on purpose: sharing must not change any answer *)
    let probe rng =
      let k = Rng.int_in rng 1 2 in
      ( ("L", Rng.sample rng k attrs_l),
        ("R", Rng.sample rng k attrs_r) )
    in
    let probes = List.init (Rng.int_in rng 1 6) (fun _ -> probe rng) in
    let probes = probes @ probes in
    let expected = naive_counts db probes in
    List.iter
      (fun (name, engine) ->
        Alcotest.(check (list (triple int int int)))
          (Printf.sprintf "round %d: ind_batch via %s" round name)
          expected
          (triples (Dbre.Verify_plan.ind_batch ~engine db probes)))
      (("naive", Engine.naive) :: batched_engines)
  done

(* ---------- scaled workload: full stages agree, incl. NEI ---------- *)

let scaled_spec seed =
  Workload.Gen_schema.scale 2.5
    {
      Workload.Gen_schema.default_spec with
      Workload.Gen_schema.seed;
      rows_per_entity = 30;
      rows_per_denorm = 50;
      null_ref_rate = 0.3;
    }

(* corrupt a planted reference so the elicitation hits real NEI
   decision points, then require the identical decision trace (counts
   triples, cases, INDs, FDs) from every engine *)
let corrupted_workload () =
  let g = Workload.Gen_schema.generate (scaled_spec 77L) in
  let db = g.Workload.Gen_schema.db in
  let rng = Rng.create 99L in
  List.iter
    (fun (i : Ind.t) ->
      ignore
        (Workload.Corrupt.break_ind rng db ~rel:i.Ind.lhs_rel
           ~attr:(List.hd i.Ind.lhs_attrs) ~rate:0.15))
    g.Workload.Gen_schema.truth.Workload.Gen_schema.planted_inds;
  g

let nei_trace (r : Dbre.Ind_discovery.result) =
  List.map
    (fun (s : Dbre.Ind_discovery.step) ->
      Printf.sprintf "%d/%d/%d:%s" s.Dbre.Ind_discovery.counts.Ind.n_left
        s.Dbre.Ind_discovery.counts.Ind.n_right
        s.Dbre.Ind_discovery.counts.Ind.n_join
        (match s.Dbre.Ind_discovery.case with
        | Dbre.Ind_discovery.Empty_intersection -> "empty"
        | Dbre.Ind_discovery.Included _ -> "included"
        | Dbre.Ind_discovery.Nei _ -> "nei"))
    r.Dbre.Ind_discovery.steps

let test_scaled_ind_discovery_agree () =
  let run engine =
    let g = corrupted_workload () in
    Dbre.Ind_discovery.run ~engine
      (Dbre.Oracle.threshold ~nei_ratio:0.8)
      g.Workload.Gen_schema.db g.Workload.Gen_schema.equijoins
  in
  let expected = run Engine.naive in
  Alcotest.(check bool)
    "corruption produced at least one NEI decision" true
    (List.exists
       (fun s -> contains ~sub:"nei" s)
       (nei_trace expected));
  List.iter
    (fun (name, engine) ->
      let r = run engine in
      Alcotest.(check (list string))
        (Printf.sprintf "NEI trace via %s" name)
        (nei_trace expected) (nei_trace r);
      check_sorted_inds
        (Printf.sprintf "INDs via %s" name)
        expected.Dbre.Ind_discovery.inds r.Dbre.Ind_discovery.inds)
    batched_engines

let test_scaled_rhs_discovery_agree () =
  let lhs_of g =
    List.map
      (fun (i : Ind.t) -> Attribute.make i.Ind.lhs_rel i.Ind.lhs_attrs)
      g.Workload.Gen_schema.truth.Workload.Gen_schema.planted_inds
  in
  let run engine =
    let g = Workload.Gen_schema.generate (scaled_spec 83L) in
    Dbre.Rhs_discovery.run ~engine Dbre.Oracle.automatic
      g.Workload.Gen_schema.db ~lhs:(lhs_of g) ~hidden:[]
  in
  let expected = run Engine.naive in
  Alcotest.(check bool)
    "workload elicits at least one FD" true
    (expected.Dbre.Rhs_discovery.fds <> []);
  List.iter
    (fun (name, engine) ->
      check_sorted_fds
        (Printf.sprintf "F via %s" name)
        expected.Dbre.Rhs_discovery.fds (run engine).Dbre.Rhs_discovery.fds)
    batched_engines

(* ---------- batches stay correct across cache invalidation ---------- *)

let db_rows t =
  let rel = Table.schema t in
  let db = Database.create (Schema.of_relations [ rel ]) in
  Database.replace_table db t;
  db

let test_batch_after_invalidation () =
  let rng = Rng.create 53L in
  for round = 1 to 15 do
    let t = random_table rng ~null_rate:0.3 "T" attrs6 (Rng.int_in rng 2 30) in
    let db = db_rows t in
    let lhs = [ Rng.pick rng attrs6 ] in
    let rhs = List.filter (fun a -> not (List.mem a lhs)) attrs6 in
    let engine = Engine.columnar in
    (* warm the memoized store with a first batch + counts *)
    ignore (Dbre.Verify_plan.fd_group ~engine t ~lhs ~rhs);
    ignore
      (Dbre.Verify_plan.ind_batch ~engine db
         [ (("T", lhs), ("T", [ List.hd rhs ])) ]);
    (* insert clears the Table.ext store slot; the next batch must see
       the new row *)
    let row =
      List.mapi
        (fun i _ ->
          if i mod 2 = 0 then Value.Int (Rng.int rng 4) else Value.Null)
        attrs6
    in
    Database.insert db "T" row;
    Alcotest.(check (list (pair string bool)))
      (Printf.sprintf "round %d: fd_group after insert" round)
      (per_candidate_naive t lhs rhs)
      (Dbre.Verify_plan.fd_group ~engine t ~lhs ~rhs);
    let probes = [ (("T", lhs), ("T", [ List.hd rhs ])) ] in
    Alcotest.(check (list (triple int int int)))
      (Printf.sprintf "round %d: ind_batch after insert" round)
      (naive_counts db probes)
      (triples (Dbre.Verify_plan.ind_batch ~engine db probes))
  done

(* ---------- Domain_pool ---------- *)

(* size-1 pool: pure sequential fallback, in submission order, on the
   calling domain *)
let test_pool_sequential_fallback () =
  let pool = Domain_pool.create 1 in
  Alcotest.(check int) "size" 1 (Domain_pool.size pool);
  let order = ref [] in
  let self = Stdlib.Domain.self () in
  Domain_pool.parallel_for pool 8 (fun i ->
      Alcotest.(check bool)
        "runs on the calling domain" true
        (Stdlib.Domain.self () = self);
      order := i :: !order);
  Alcotest.(check (list int)) "in-order execution" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (List.rev !order);
  Domain_pool.shutdown pool

let test_pool_map_array_order () =
  let pool = Domain_pool.create 4 in
  let input = Array.init 100 (fun i -> i) in
  let out = Domain_pool.map_array pool (fun x -> x * x) input in
  Alcotest.(check (array int))
    "results by index whatever the scheduling"
    (Array.init 100 (fun i -> i * i))
    out;
  Domain_pool.shutdown pool

let test_pool_reuse_and_registry () =
  (* Engine.pool: no pool for sequential engines, one shared persistent
     pool per size otherwise *)
  Alcotest.(check bool)
    "sequential engine has no pool" true
    (Engine.pool Engine.columnar = None);
  Alcotest.(check bool)
    "1-domain engine has no pool" true
    (Engine.pool (Engine.make ~parallelism:(Engine.Domains 1) ()) = None);
  match
    ( Engine.pool (Engine.parallel ~domains:3 ()),
      Engine.pool (Engine.parallel ~domains:3 ()) )
  with
  | Some p1, Some p2 ->
      Alcotest.(check bool) "same pool instance across calls" true (p1 == p2);
      let before = Domain_pool.batches p1 in
      Domain_pool.parallel_for p1 4 (fun _ -> ());
      Domain_pool.parallel_for p1 4 (fun _ -> ());
      Alcotest.(check int) "batches served by the one spawn" (before + 2)
        (Domain_pool.batches p1)
  | _ -> Alcotest.fail "parallel engine must expose a pool"

exception Boom of int

let test_pool_exception_propagation () =
  List.iter
    (fun size ->
      let pool = Domain_pool.create size in
      (match
         Domain_pool.parallel_for pool 16 (fun i ->
             if i = 11 then raise (Boom i))
       with
      | () -> Alcotest.fail "expected the task exception to re-raise"
      | exception Boom 11 -> ());
      (* the pool survives a failed batch *)
      let hits = Atomic.make 0 in
      Domain_pool.parallel_for pool 16 (fun _ ->
          ignore (Atomic.fetch_and_add hits 1));
      Alcotest.(check int)
        (Printf.sprintf "pool of %d usable after failure" size)
        16 (Atomic.get hits);
      Domain_pool.shutdown pool)
    [ 1; 4 ]

let suite =
  [
    Alcotest.test_case "fd_group matches per-candidate naive" `Quick
      test_fd_group_matches_naive;
    Alcotest.test_case "fd batches compose with memoized verdicts" `Quick
      test_fd_batch_memo_consistent;
    Alcotest.test_case "ind_batch matches per-probe naive" `Quick
      test_ind_batch_matches_naive;
    Alcotest.test_case "scaled IND-Discovery agrees (NEI trace)" `Quick
      test_scaled_ind_discovery_agree;
    Alcotest.test_case "scaled RHS-Discovery agrees" `Quick
      test_scaled_rhs_discovery_agree;
    Alcotest.test_case "batches see inserts (ext-cache invalidation)" `Quick
      test_batch_after_invalidation;
    Alcotest.test_case "pool: 1-domain sequential fallback" `Quick
      test_pool_sequential_fallback;
    Alcotest.test_case "pool: map_array preserves order" `Quick
      test_pool_map_array_order;
    Alcotest.test_case "pool: persistent + engine registry" `Quick
      test_pool_reuse_and_registry;
    Alcotest.test_case "pool: task exceptions propagate" `Quick
      test_pool_exception_propagation;
  ]
