open Relational
open Helpers
open Deps
open Dbre

(* ---------- the paper's running example, end to end (E1-F1) ---------- *)

let test_paper_q_from_programs () =
  (* the front-end recovers exactly the §5 set Q from program sources *)
  let r = Workload.Paper_example.run_from_programs () in
  Alcotest.(check (list equijoin_t)) "Q"
    (Workload.Paper_example.equijoins ())
    r.Pipeline.equijoins

let test_paper_ind_set () =
  let r = Workload.Paper_example.run () in
  check_sorted_inds "the six §6.1 INDs"
    [
      ind ("HEmployee", [ "no" ]) ("Person", [ "id" ]);
      ind ("Department", [ "emp" ]) ("HEmployee", [ "no" ]);
      ind ("Assignment", [ "emp" ]) ("HEmployee", [ "no" ]);
      ind ("Ass-Dept", [ "dep" ]) ("Assignment", [ "dep" ]);
      ind ("Ass-Dept", [ "dep" ]) ("Department", [ "dep" ]);
      ind ("Department", [ "proj" ]) ("Assignment", [ "proj" ]);
    ]
    r.Pipeline.ind_result.Ind_discovery.inds;
  match r.Pipeline.ind_result.Ind_discovery.new_relations with
  | [ rel ] -> Alcotest.(check string) "S = {Ass-Dept}" "Ass-Dept" rel.Relation.name
  | _ -> Alcotest.fail "expected exactly one conceptualized relation"

let test_paper_f_set () =
  let r = Workload.Paper_example.run () in
  check_sorted_fds "the two §6.2.2 FDs"
    [
      fd "Department" [ "emp" ] [ "skill"; "proj" ];
      fd "Assignment" [ "proj" ] [ "project-name" ];
    ]
    r.Pipeline.rhs_result.Rhs_discovery.fds;
  Alcotest.(check (list string)) "final H"
    [ "HEmployee.no"; "Assignment.dep" ]
    (List.map Attribute.to_string r.Pipeline.rhs_result.Rhs_discovery.hidden)

let test_paper_3nf () =
  let r = Workload.Paper_example.run () in
  List.iter
    (fun (name, nf) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s at least 3NF" name)
        true
        (match nf with
        | Normal_forms.Nf3 | Normal_forms.Bcnf -> true
        | Normal_forms.Nf1 | Normal_forms.Nf2 -> false))
    (Pipeline.nf_report r)

let test_paper_zipcode_not_elicited () =
  (* zip-code -> state holds in the data but is never elicited: no program
     navigates it (the paper's point about irrelevant FDs) *)
  let db = Workload.Paper_example.database () in
  Alcotest.(check bool) "holds in data" true
    (Fd.satisfied_by (Database.table db "Person")
       (fd "Person" [ "zip-code" ] [ "state" ]));
  let r = Workload.Paper_example.run () in
  Alcotest.(check bool) "never elicited" false
    (List.exists
       (fun (f : Fd.t) -> f.Fd.rel = "Person")
       r.Pipeline.rhs_result.Rhs_discovery.fds)

let test_paper_events () =
  let r = Workload.Paper_example.run () in
  let conceptualizations =
    List.filter
      (function
        | Oracle.Nei_decided (_, Oracle.Conceptualize _) -> true | _ -> false)
      r.Pipeline.events
  in
  Alcotest.(check int) "one NEI conceptualized" 1 (List.length conceptualizations);
  let hidden_accepted =
    List.filter
      (function Oracle.Hidden_considered (_, true) -> true | _ -> false)
      r.Pipeline.events
  in
  Alcotest.(check int) "one hidden object accepted" 1 (List.length hidden_accepted)

let test_paper_report_renders () =
  let r = Workload.Paper_example.run () in
  let text = Format.asprintf "%a" Report.pp_result r in
  Alcotest.(check bool) "nonempty narrative" true (String.length text > 2000)

(* ---------- other input forms and configurations ---------- *)

let test_sql_scripts_input () =
  let db = Workload.Paper_example.database () in
  let r =
    Pipeline.run db
      (Job_spec.Sql_scripts
         [ "SELECT name FROM Person, HEmployee WHERE HEmployee.no = Person.id;" ])
  in
  Alcotest.(check int) "one equijoin" 1 (List.length r.Pipeline.equijoins);
  check_sorted_inds "one IND"
    [ ind ("HEmployee", [ "no" ]) ("Person", [ "id" ]) ]
    r.Pipeline.ind_result.Ind_discovery.inds

let test_partition_engine_agrees () =
  let run engine =
    let db = Workload.Paper_example.database () in
    let config =
      {
        Pipeline.default_config with
        Pipeline.oracle = Workload.Paper_example.oracle ();
        engine;
        migrate_data = false;
      }
    in
    (Pipeline.run ~config db
       (Job_spec.Equijoins (Workload.Paper_example.equijoins ())))
      .Pipeline.rhs_result.Rhs_discovery.fds
  in
  check_sorted_fds "engines agree on F" (run Dbre.Engine.naive)
    (run Dbre.Engine.partition);
  check_sorted_fds "columnar agrees on F" (run Dbre.Engine.naive)
    (run Dbre.Engine.columnar)

let test_no_migration_config () =
  let db = Workload.Paper_example.database () in
  let config =
    {
      Pipeline.default_config with
      Pipeline.oracle = Workload.Paper_example.oracle ();
      engine = Dbre.Engine.naive;
      migrate_data = false;
    }
  in
  let r =
    Pipeline.run ~config db
      (Job_spec.Equijoins (Workload.Paper_example.equijoins ()))
  in
  Alcotest.(check bool) "no migrated db" true
    (r.Pipeline.restruct_result.Restruct.database = None)

(* ---------- synthetic ground truth recovery ---------- *)

let test_synthetic_recovery () =
  let g = Workload.Gen_schema.generate Workload.Gen_schema.default_spec in
  let r =
    Pipeline.run g.Workload.Gen_schema.db
      (Job_spec.Equijoins g.Workload.Gen_schema.equijoins)
  in
  check_sorted_inds "all planted INDs recovered"
    g.Workload.Gen_schema.truth.Workload.Gen_schema.planted_inds
    r.Pipeline.ind_result.Ind_discovery.inds;
  check_sorted_fds "all planted FDs recovered"
    g.Workload.Gen_schema.truth.Workload.Gen_schema.planted_fds
    r.Pipeline.rhs_result.Rhs_discovery.fds

let test_synthetic_from_programs () =
  let g = Workload.Gen_schema.generate Workload.Gen_schema.default_spec in
  let r =
    Pipeline.run g.Workload.Gen_schema.db
      (Job_spec.Programs g.Workload.Gen_schema.programs)
  in
  check_sorted_inds "program scan finds the same INDs"
    g.Workload.Gen_schema.truth.Workload.Gen_schema.planted_inds
    r.Pipeline.ind_result.Ind_discovery.inds

let test_payroll_scenario () =
  let s = Workload.Scenarios.payroll in
  let db = s.Workload.Scenarios.database () in
  let config =
    {
      Pipeline.default_config with
      Pipeline.oracle = s.Workload.Scenarios.oracle ();
    }
  in
  let r = Pipeline.run ~config db (Job_spec.Programs s.Workload.Scenarios.programs) in
  (* headline structures *)
  let schema = r.Pipeline.restruct_result.Restruct.schema in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " created") true (Schema.mem schema name))
    [
      "Paid-Staff"; "Active-Staff"; "Department"; "Tax-Band"; "Project";
      "Sponsorship"; "Sponsored-Active-Project";
    ];
  (* grade -> grade_label is NOT elicited (no program navigates it) *)
  Alcotest.(check bool) "grade_label stays in Staff" true
    (Relation.has_attr (Schema.find_exn schema "Staff") "grade_label");
  let eer = r.Pipeline.translate_result.Translate.eer in
  Alcotest.(check bool) "Payslip weak of Paid-Staff" true
    (match Er.Eer.find_entity eer "Payslip" with
    | Some e -> e.Er.Eer.e_weak_of = Some "Paid-Staff"
    | None -> false);
  Alcotest.(check (result unit (list string))) "payroll EER validates" (Ok ())
    (Er.Validate.check eer)

let suite =
  [
    Alcotest.test_case "paper: Q from programs" `Quick test_paper_q_from_programs;
    Alcotest.test_case "paper: IND set (E2)" `Quick test_paper_ind_set;
    Alcotest.test_case "paper: F and H (E4)" `Quick test_paper_f_set;
    Alcotest.test_case "paper: 3NF reached (E5)" `Quick test_paper_3nf;
    Alcotest.test_case "paper: zip-code FD not elicited" `Quick test_paper_zipcode_not_elicited;
    Alcotest.test_case "paper: expert events" `Quick test_paper_events;
    Alcotest.test_case "paper: report renders" `Quick test_paper_report_renders;
    Alcotest.test_case "sql-scripts input" `Quick test_sql_scripts_input;
    Alcotest.test_case "partition engine agrees" `Quick test_partition_engine_agrees;
    Alcotest.test_case "no-migration config" `Quick test_no_migration_config;
    Alcotest.test_case "synthetic ground truth" `Quick test_synthetic_recovery;
    Alcotest.test_case "synthetic via programs" `Quick test_synthetic_from_programs;
    Alcotest.test_case "payroll scenario" `Quick test_payroll_scenario;
  ]
