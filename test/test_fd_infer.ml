open Helpers
open Deps

let sample () =
  table "T" [ "a"; "b"; "c"; "d" ]
    [
      [ vi 1; vs "x"; vi 10; vs "p" ];
      [ vi 1; vs "x"; vi 20; vs "p" ];
      [ vi 2; vs "y"; vi 30; vs "p" ];
      [ vi 3; vs "y"; vi 40; vs "q" ];
    ]

(* holds: a->b, a->d (1⇒p,2⇒p,3⇒q ok), c->everything (unique), b->nothing
   (y ⇒ 2,3); fails: a->c, b->a, b->d *)

let test_engines_agree () =
  let t = sample () in
  let fds_to_try =
    [
      fd "T" [ "a" ] [ "b" ];
      fd "T" [ "a" ] [ "c" ];
      fd "T" [ "a" ] [ "d" ];
      fd "T" [ "b" ] [ "a" ];
      fd "T" [ "b" ] [ "d" ];
      fd "T" [ "c" ] [ "a"; "b"; "d" ];
      fd "T" [ "a"; "b" ] [ "d" ];
    ]
  in
  List.iter
    (fun f ->
      let naive = Fd_infer.holds_naive t f in
      let part = Fd_infer.holds_partition t f in
      let spec = Fd.satisfied_by t f in
      Alcotest.(check bool)
        (Printf.sprintf "%s naive=spec" (Fd.to_string f))
        spec naive;
      Alcotest.(check bool)
        (Printf.sprintf "%s partition=spec" (Fd.to_string f))
        spec part)
    fds_to_try

let test_holds_results () =
  let t = sample () in
  Alcotest.(check bool) "a->b" true (Fd_infer.holds t (fd "T" [ "a" ] [ "b" ]));
  Alcotest.(check bool) "a->c" false (Fd_infer.holds t (fd "T" [ "a" ] [ "c" ]));
  Alcotest.(check bool) "c unique determines all" true
    (Fd_infer.holds ~engine:Relational.Engine.partition t
       (fd "T" [ "c" ] [ "a"; "b"; "d" ]))

let test_error_rate () =
  let t = sample () in
  Alcotest.(check (float 1e-9)) "holding fd has zero error" 0.0
    (Fd_infer.error_rate t (fd "T" [ "a" ] [ "b" ]));
  (* a->c: group a=1 keeps 1 of 2 rows; one removal / 4 rows *)
  Alcotest.(check (float 1e-9)) "g3 error" 0.25
    (Fd_infer.error_rate t (fd "T" [ "a" ] [ "c" ]));
  let empty = table "E" [ "a"; "b" ] [] in
  Alcotest.(check (float 1e-9)) "empty table" 0.0
    (Fd_infer.error_rate empty (fd "E" [ "a" ] [ "b" ]))

let test_discover () =
  let t = sample () in
  let fds, stats = Fd_infer.discover ~max_lhs:2 ~rel:"T" t in
  (* all discovered FDs actually hold *)
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Fd.to_string f ^ " holds")
        true (Fd.satisfied_by t f))
    fds;
  (* the known minimal FDs are found *)
  let has lhs rhs_attr =
    List.exists
      (fun (f : Fd.t) ->
        Relational.Attribute.Names.equal f.Fd.lhs
          (Relational.Attribute.Names.normalize lhs)
        && List.mem rhs_attr f.Fd.rhs)
      fds
  in
  Alcotest.(check bool) "a->b found" true (has [ "a" ] "b");
  Alcotest.(check bool) "a->d found" true (has [ "a" ] "d");
  Alcotest.(check bool) "c->a found (key)" true (has [ "c" ] "a");
  (* minimality: no a,b -> d since a -> d already holds *)
  Alcotest.(check bool) "no superset lhs" false (has [ "a"; "b" ] "d");
  Alcotest.(check bool) "stats sane" true (stats.Fd_infer.candidates_tested > 0)

let test_discover_for_lhs () =
  let t = sample () in
  (match Fd_infer.discover_for_lhs ~rel:"T" t [ "a" ] with
  | Some f -> Alcotest.(check names) "maximal rhs" [ "b"; "d" ] f.Fd.rhs
  | None -> Alcotest.fail "expected FD");
  match Fd_infer.discover_for_lhs ~rel:"T" t [ "b" ] with
  | Some f -> Alcotest.failf "expected nothing, got %s" (Fd.to_string f)
  | None -> ()

let test_discover_key_pruning () =
  (* once {c} is known unique, {c,x} candidates are skipped *)
  let t = sample () in
  let _, stats1 = Fd_infer.discover ~max_lhs:1 ~rel:"T" t in
  let _, stats3 = Fd_infer.discover ~max_lhs:3 ~rel:"T" t in
  Alcotest.(check bool) "pruning keeps growth sublinear" true
    (stats3.Fd_infer.candidates_tested < 4 * stats1.Fd_infer.candidates_tested * 4)

let test_tane_agrees_with_discover () =
  (* NULL-free table: both engines return the same minimal FDs *)
  let t = sample () in
  let via_discover, _ = Fd_infer.discover ~max_lhs:3 ~rel:"T" t in
  let via_tane, _ = Fd_infer.discover_tane ~max_lhs:3 ~rel:"T" t in
  check_sorted_fds "same FDs" via_discover via_tane

let test_tane_on_armstrong () =
  (* TANE over an Armstrong relation recovers exactly the cover's closure *)
  let fds = [ fd "R" [ "a" ] [ "b" ]; fd "R" [ "b" ] [ "c" ] ] in
  let t = Armstrong.relation ~rel:"R" fds ~attrs:[ "a"; "b"; "c" ] in
  let found, _ = Fd_infer.discover_tane ~max_lhs:2 ~rel:"R" t in
  List.iter
    (fun (f : Fd.t) ->
      Alcotest.(check bool)
        (Fd.to_string f ^ " implied by cover")
        true (Closure.implies fds f))
    found;
  List.iter
    (fun (f : Fd.t) ->
      Alcotest.(check bool)
        (Fd.to_string f ^ " found")
        true
        (List.exists
           (fun (g : Fd.t) ->
             Relational.Attribute.Names.equal g.Fd.lhs f.Fd.lhs
             && Relational.Attribute.Names.subset f.Fd.rhs g.Fd.rhs)
           found))
    fds

let test_null_lhs () =
  let t =
    table "T" [ "a"; "b" ]
      [ [ vnull; vs "x" ]; [ vnull; vs "y" ]; [ vi 1; vs "z" ] ]
  in
  Alcotest.(check bool) "naive skips null lhs" true
    (Fd_infer.holds_naive t (fd "T" [ "a" ] [ "b" ]));
  Alcotest.(check bool) "partition skips null lhs" true
    (Fd_infer.holds_partition t (fd "T" [ "a" ] [ "b" ]))

let suite =
  [
    Alcotest.test_case "engines agree with spec" `Quick test_engines_agree;
    Alcotest.test_case "holds" `Quick test_holds_results;
    Alcotest.test_case "error rate" `Quick test_error_rate;
    Alcotest.test_case "levelwise discover" `Quick test_discover;
    Alcotest.test_case "discover for lhs" `Quick test_discover_for_lhs;
    Alcotest.test_case "key pruning" `Quick test_discover_key_pruning;
    Alcotest.test_case "tane agrees with discover" `Quick test_tane_agrees_with_discover;
    Alcotest.test_case "tane on armstrong relation" `Quick test_tane_on_armstrong;
    Alcotest.test_case "null lhs" `Quick test_null_lhs;
  ]
