(* Incremental re-verification: delta-maintained column stores must be
   observationally identical to recomputing from scratch. Fuzzed
   insert / delete / batch-append sequences over generated workloads
   assert that a [Pipeline.refresh_checked] after mutation yields
   byte-identical F/H/IND/RIC artifacts to a cold run over the same
   mutated extension — at 1, 2 and 4 domains and on both sides of the
   rebuild-fallback threshold — plus pinned verdict-flip cases: an FD
   broken by an insert and an IND broken by deleting a referenced row.

   Deterministic by construction: every mutation burst is driven by a
   seeded Workload.Rng stream over two identical generated databases. *)

open Helpers
open Relational
open Deps
module Rng = Workload.Rng
module Gen = Workload.Gen_schema
module Pipeline = Dbre.Pipeline
module Job_spec = Dbre.Job_spec

(* ---------- fuzzed mutation bursts ---------- *)

let gen_spec seed =
  {
    Gen.default_spec with
    Gen.seed;
    rows_per_entity = 40;
    rows_per_denorm = 80;
    null_ref_rate = 0.2;
  }

(* a plausible fresh row for [t]: copy a random existing row, then
   overwrite one attribute with that column's value from another row —
   type-consistent, and occasionally dependency-breaking *)
let sample_row rng t =
  let rows = Table.rows t in
  let n = Array.length rows in
  let base = Tuple.to_list rows.(Rng.int rng n) in
  let donor = Tuple.to_list rows.(Rng.int rng n) in
  let k = Rng.int rng (List.length base) in
  List.mapi (fun i v -> if i = k then List.nth donor i else v) base

(* one fuzzed burst against every named relation: a transactional batch
   append, a single insert, then a small delete. Deterministic in
   (rng seed, extension), so an identical database can replay it. *)
let mutate rng db names =
  List.iter
    (fun name ->
      let t = Database.table db name in
      let batch = List.init (1 + Rng.int rng 3) (fun _ -> sample_row rng t) in
      Table.insert_many t batch;
      Database.insert db name (sample_row rng t);
      let m = Table.cardinality t in
      Table.delete_rows t
        (List.sort_uniq compare [ Rng.int rng m; Rng.int rng m ]))
    names

let artifacts_exn config db input =
  match Pipeline.run_checked ~config db input with
  | Ok r -> Dbre.Report.artifacts r
  | Error p ->
      Alcotest.failf "pipeline failed: %s" (Error.to_string p.Pipeline.p_error)

(* warm-run a generated workload, mutate it, refresh incrementally; an
   identical database mutated the same way and run cold must produce
   the very same artifact bytes. Returns the refresh report. *)
let check_refresh_equivalence ~msg config seed =
  let spec = gen_spec seed in
  let g = Gen.generate spec in
  let names =
    List.map
      (fun r -> r.Relation.name)
      (Schema.relations (Database.schema g.Gen.db))
  in
  let input = Job_spec.Equijoins g.Gen.equijoins in
  let mut_seed = Int64.add spec.Gen.seed 1000L in
  (* warm: full run (stores memoized), mutate, delta refresh *)
  ignore (artifacts_exn config g.Gen.db input);
  mutate (Rng.create mut_seed) g.Gen.db names;
  let report, result = Pipeline.refresh_checked ~config g.Gen.db input in
  let refreshed =
    match result with
    | Ok r -> Dbre.Report.artifacts r
    | Error p ->
        Alcotest.failf "%s: refresh failed: %s" msg
          (Error.to_string p.Pipeline.p_error)
  in
  (* cold: same generator output, same burst, no prior run, no caches *)
  let h = Gen.generate spec in
  mutate (Rng.create mut_seed) h.Gen.db names;
  List.iter (fun n -> Table.clear_ext_cache (Database.table h.Gen.db n)) names;
  let cold = artifacts_exn config h.Gen.db input in
  Alcotest.(check (list (pair string string))) msg cold refreshed;
  report

let with_engine engine = { Pipeline.default_config with Pipeline.engine }

let test_fuzz_columnar () =
  List.iter
    (fun seed ->
      let report =
        check_refresh_equivalence
          ~msg:(Printf.sprintf "artifacts (seed %Ld)" seed)
          (with_engine Engine.columnar) seed
      in
      (* the burst is small (≤6 rows on 40+-row tables): under the
         default fraction every touched store absorbs its delta *)
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld: stores were refreshed" seed)
        true
        (report.Refresh.absorbed >= 1);
      Alcotest.(check int)
        (Printf.sprintf "seed %Ld: nothing fell back to rebuild" seed)
        0 report.Refresh.rebuilt)
    [ 7L; 19L; 23L ]

let test_fuzz_domains () =
  List.iter
    (fun domains ->
      ignore
        (check_refresh_equivalence
           ~msg:(Printf.sprintf "artifacts (%d domains)" domains)
           (with_engine (Engine.parallel ~domains ()))
           11L))
    [ 2; 4 ]

(* the same workload on both sides of the fallback threshold: a loose
   fraction absorbs every delta, a zero fraction rebuilds every store —
   and the artifacts are identical either way *)
let test_fallback_threshold () =
  Column_store.reset_delta_stats ();
  let absorb =
    check_refresh_equivalence ~msg:"artifacts (absorb side)"
      (with_engine (Engine.make ~delta_fraction:1.0 ()))
      31L
  in
  Alcotest.(check int) "loose fraction: no rebuilds" 0 absorb.Refresh.rebuilt;
  Alcotest.(check bool) "loose fraction: absorbed" true
    (absorb.Refresh.absorbed >= 1);
  let stats = Column_store.delta_stats () in
  Alcotest.(check bool) "incremental counter moved" true
    (stats.Column_store.incremental_refreshes >= 1);
  Alcotest.(check bool) "absorbed rows counted" true
    (stats.Column_store.rows_absorbed >= absorb.Refresh.rows_applied);
  let rebuild =
    check_refresh_equivalence ~msg:"artifacts (rebuild side)"
      (with_engine (Engine.make ~delta_fraction:0.0 ()))
      31L
  in
  Alcotest.(check int) "zero fraction: no absorbs" 0 rebuild.Refresh.absorbed;
  Alcotest.(check bool) "zero fraction: rebuilt" true
    (rebuild.Refresh.rebuilt >= 1);
  let stats = Column_store.delta_stats () in
  Alcotest.(check bool) "rebuild counter moved" true
    (stats.Column_store.full_rebuilds >= 1)

(* ---------- pinned verdict flips ---------- *)

(* a TRUE FD verdict must flip when an insert breaks it, and survive an
   insert that does not — both through the incremental path *)
let test_fd_broken_by_insert () =
  let t =
    table "R" [ "a"; "b"; "c" ]
      [
        [ vi 1; vs "x"; vi 10 ];
        [ vi 1; vs "x"; vi 20 ];
        [ vi 2; vs "y"; vi 30 ];
        [ vi 3; vs "z"; vi 40 ];
      ]
  in
  let f = fd "R" [ "a" ] [ "b" ] in
  let engine = Engine.columnar in
  Alcotest.(check bool) "a -> b holds before" true (Fd_infer.holds ~engine t f);
  (* harmless append: new group, then a repeat of an existing pair *)
  Table.insert t [ vi 4; vs "w"; vi 50 ];
  Table.insert t [ vi 1; vs "x"; vi 60 ];
  (* 2 delta rows on a 4-row table exceeds the default fraction, so
     widen the budget to pin the absorb path *)
  (match Column_store.refresh ~delta_fraction:1.0 t with
  | Some (Column_store.Store_absorbed n) ->
      Alcotest.(check int) "two appended rows absorbed" 2 n
  | _ -> Alcotest.fail "expected an incremental absorb");
  Alcotest.(check bool) "still holds after harmless appends" true
    (Fd_infer.holds ~engine t f);
  (* breaking append: a=1 now maps to two b values *)
  Table.insert t [ vi 1; vs "DIFFERENT"; vi 70 ];
  Alcotest.(check bool) "flips to false incrementally" false
    (Fd_infer.holds ~engine t f);
  Alcotest.(check bool) "naive recompute agrees" false
    (Fd_infer.holds ~engine:Engine.naive t f)

(* an IND (join count = referencing side's distinct count) must flip
   when the referenced row is deleted, through the coordinated
   database-level refresh *)
let test_ind_broken_by_delete () =
  let l = Relation.make "L" [ "ref" ] in
  let r = Relation.make "R" [ "id"; "nm" ] in
  let db =
    database
      [
        (l, [ [ vi 1 ]; [ vi 2 ]; [ vi 3 ]; [ vi 2 ] ]);
        (r, [ [ vi 1; vs "a" ]; [ vi 2; vs "b" ]; [ vi 3; vs "c" ];
              [ vi 4; vs "d" ] ]);
      ]
  in
  let n_left () = Database.count_distinct db "L" [ "ref" ] in
  let n_join () = Database.join_count db ("L", [ "ref" ]) ("R", [ "id" ]) in
  Alcotest.(check bool) "L[ref] <= R[id] before" true (n_join () = n_left ());
  (* delete the row holding id 3 — referenced by L *)
  Table.delete_rows (Database.table db "R") [ 2 ];
  let report = Refresh.database db in
  (match List.assoc_opt "L" report.Refresh.relations with
  | Some Refresh.Store_fresh -> ()
  | _ -> Alcotest.fail "untouched L should report Store_fresh");
  (match List.assoc_opt "R" report.Refresh.relations with
  | Some (Refresh.Store_absorbed 1) -> ()
  | _ -> Alcotest.fail "R should absorb its one-row delete");
  Alcotest.(check bool) "IND broken after delete" false (n_join () = n_left ());
  Alcotest.(check int) "join count matches naive recompute"
    (Database.join_count ~engine:Engine.naive db ("L", [ "ref" ])
       ("R", [ "id" ]))
    (n_join ());
  Alcotest.(check int) "distinct count matches naive recompute"
    (Database.count_distinct ~engine:Engine.naive db "L" [ "ref" ])
    (n_left ())

(* ---------- the mutation log itself ---------- *)

let test_mutation_log () =
  let t = table "T" [ "a"; "b" ] [ [ vi 1; vi 2 ]; [ vi 3; vi 4 ] ] in
  let v0 = Table.version t in
  Table.insert_many t [ [ vi 5; vi 6 ]; [ vi 7; vi 8 ] ];
  Alcotest.(check int) "one version bump per batch" (v0 + 1) (Table.version t);
  (match Table.deltas_since t v0 with
  | Some [ Table.Rows_appended rows ] ->
      Alcotest.(check int) "batch logged as one entry" 2 (Array.length rows)
  | _ -> Alcotest.fail "expected a single appended batch");
  Table.delete_rows t [ 0 ];
  (match Table.deltas_since t v0 with
  | Some [ Table.Rows_appended _; Table.Rows_deleted (idxs, tups) ] ->
      Alcotest.(check (list int)) "deleted indices" [ 0 ]
        (Array.to_list idxs);
      Alcotest.(check (list value)) "deleted tuples carry their values"
        [ vi 1; vi 2 ]
        (Tuple.to_list tups.(0))
  | _ -> Alcotest.fail "expected append then delete, oldest first");
  Alcotest.(check bool) "current version replays as Some []" true
    (Table.deltas_since t (Table.version t) = Some []);
  Alcotest.(check bool) "unknown version yields None" true
    (Table.deltas_since t (Table.version t + 5) = None)

let test_log_trim () =
  let t = Table.create (Relation.make "T" [ "a" ]) in
  let v0 = Table.version t in
  Table.insert_many t (List.init 2000 (fun i -> [ vi i ]));
  let v1 = Table.version t in
  (* a mass delete pushes the logged-tuple total past the cap: the
     oldest entries are dropped and replay from before them fails *)
  Table.delete_rows t (List.init 1500 (fun i -> i));
  Alcotest.(check bool) "replay from before the trim is refused" true
    (Table.deltas_since t v0 = None);
  (* a store that had seen v0 must rebuild, not absorb *)
  ignore (Column_store.of_table t);
  Alcotest.(check bool) "store still answers correctly after trim" true
    (Column_store.count_distinct (Column_store.of_table t) [ "a" ] = 500);
  (match Table.deltas_since t v1 with
  | Some [ Table.Rows_deleted (idxs, _) ] ->
      Alcotest.(check int) "newest entry still replayable" 1500
        (Array.length idxs)
  | _ -> Alcotest.fail "expected the delete entry to survive the trim")

(* insert_many is transactional: a bad row leaves no trace *)
let test_insert_many_transactional () =
  let t = table "T" [ "a"; "b" ] [ [ vi 1; vi 2 ] ] in
  let v0 = Table.version t in
  (try
     Table.insert_many t [ [ vi 3; vi 4 ]; [ vi 5 ] ];
     Alcotest.fail "arity error expected"
   with Invalid_argument _ -> ());
  Alcotest.(check int) "cardinality unchanged" 1 (Table.cardinality t);
  Alcotest.(check int) "version unchanged" v0 (Table.version t);
  Alcotest.(check bool) "nothing logged" true
    (Table.deltas_since t v0 = Some [])

let suite =
  [
    Alcotest.test_case "fuzzed refresh = cold recompute (columnar)" `Quick
      test_fuzz_columnar;
    Alcotest.test_case "fuzzed refresh = cold recompute (2/4 domains)" `Quick
      test_fuzz_domains;
    Alcotest.test_case "identical across the fallback threshold" `Quick
      test_fallback_threshold;
    Alcotest.test_case "FD broken by insert flips incrementally" `Quick
      test_fd_broken_by_insert;
    Alcotest.test_case "IND broken by delete flips via refresh" `Quick
      test_ind_broken_by_delete;
    Alcotest.test_case "mutation log semantics" `Quick test_mutation_log;
    Alcotest.test_case "log trim forces rebuild" `Quick test_log_trim;
    Alcotest.test_case "insert_many is transactional" `Quick
      test_insert_many_transactional;
  ]
