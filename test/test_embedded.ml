open Sqlx

let test_exec_sql_cobol () =
  let e =
    Embedded.scan
      "       PROCEDURE DIVISION.\n\
      \           EXEC SQL SELECT a FROM R WHERE a = 1 END-EXEC.\n\
      \           DISPLAY 'done'."
  in
  Alcotest.(check int) "one statement" 1 (List.length e.Embedded.statements);
  Alcotest.(check int) "no failures" 0 (List.length e.Embedded.parse_failures)

let test_exec_sql_c () =
  let e =
    Embedded.scan "int f(void) { EXEC SQL SELECT a FROM R; return 0; }"
  in
  Alcotest.(check int) "one statement" 1 (List.length e.Embedded.statements)

let test_multiple_blocks () =
  let e =
    Embedded.scan
      "EXEC SQL SELECT a FROM R END-EXEC. stuff EXEC SQL SELECT b FROM S \
       END-EXEC."
  in
  Alcotest.(check int) "two" 2 (List.length e.Embedded.statements)

let test_string_literal () =
  let e = Embedded.scan {|run("SELECT a FROM R WHERE a > 3");|} in
  Alcotest.(check int) "one" 1 (List.length e.Embedded.statements)

let test_concatenated_literals () =
  let e =
    Embedded.scan
      {|q = "SELECT a FROM R " +
           "WHERE a IN (SELECT b FROM S)";|}
  in
  Alcotest.(check int) "joined" 1 (List.length e.Embedded.statements);
  match e.Embedded.statements with
  | [ Ast.Query (Ast.Select s) ] ->
      Alcotest.(check bool) "where present" true (s.Ast.where <> None)
  | _ -> Alcotest.fail "expected query"

let test_non_sql_strings_ignored () =
  let e = Embedded.scan {|printf("hello %s", "SELECTED TEXT");|} in
  Alcotest.(check int) "ignored" 0 (List.length e.Embedded.statements)

let test_unparsable_recorded () =
  let e = Embedded.scan {|run("SELECT FROM WHERE NONSENSE ((");|} in
  Alcotest.(check int) "no statements" 0 (List.length e.Embedded.statements);
  Alcotest.(check int) "failure recorded" 1 (List.length e.Embedded.parse_failures)

let test_host_variables_preserved () =
  let e =
    Embedded.scan
      "EXEC SQL SELECT a FROM R WHERE a = :w-emp AND b = :x END-EXEC."
  in
  Alcotest.(check int) "parsed with host vars" 1 (List.length e.Embedded.statements)

let test_cursor_declaration () =
  let e =
    Embedded.scan
      "       EXEC SQL DECLARE C1 CURSOR FOR\n\
      \         SELECT a FROM R WHERE a > 1\n\
      \       END-EXEC."
  in
  Alcotest.(check int) "cursor select parsed" 1 (List.length e.Embedded.statements);
  match e.Embedded.statements with
  | [ Ast.Declare_cursor ("C1", Ast.Select _, _) ] -> ()
  | _ -> Alcotest.fail "expected a parsed cursor declaration"

let test_scan_files () =
  let e =
    Embedded.scan_files
      [ "EXEC SQL SELECT a FROM R;"; {|go("SELECT b FROM S");|} ]
  in
  Alcotest.(check int) "both files" 2 (List.length e.Embedded.statements);
  Alcotest.(check int) "raw count" 2 e.Embedded.raw_found

let test_paper_programs () =
  let e = Embedded.scan_files (Workload.Paper_example.programs ()) in
  Alcotest.(check int) "five statements" 5 (List.length e.Embedded.statements);
  Alcotest.(check (list string)) "no failures" [] e.Embedded.parse_failures

let suite =
  [
    Alcotest.test_case "EXEC SQL cobol" `Quick test_exec_sql_cobol;
    Alcotest.test_case "EXEC SQL c" `Quick test_exec_sql_c;
    Alcotest.test_case "multiple blocks" `Quick test_multiple_blocks;
    Alcotest.test_case "string literal" `Quick test_string_literal;
    Alcotest.test_case "concatenated literals" `Quick test_concatenated_literals;
    Alcotest.test_case "non-sql strings" `Quick test_non_sql_strings_ignored;
    Alcotest.test_case "unparsable recorded" `Quick test_unparsable_recorded;
    Alcotest.test_case "host variables" `Quick test_host_variables_preserved;
    Alcotest.test_case "cursor declaration" `Quick test_cursor_declaration;
    Alcotest.test_case "scan files" `Quick test_scan_files;
    Alcotest.test_case "paper programs" `Quick test_paper_programs;
  ]
