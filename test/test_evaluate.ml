open Helpers
open Workload

let m = Alcotest.testable Evaluate.pp_metrics (fun a b -> a = b)

let test_perfect_recovery () =
  let truth = [ ind ("A", [ "x" ]) ("B", [ "y" ]) ] in
  let got = Evaluate.ind_metrics ~truth truth in
  Alcotest.(check m) "perfect"
    {
      Evaluate.true_positives = 1;
      false_positives = 0;
      false_negatives = 0;
      precision = 1.0;
      recall = 1.0;
      f1 = 1.0;
    }
    got

let test_partial_ind () =
  let truth =
    [ ind ("A", [ "x" ]) ("B", [ "y" ]); ind ("B", [ "y" ]) ("C", [ "z" ]) ]
  in
  let found =
    [ ind ("A", [ "x" ]) ("B", [ "y" ]); ind ("A", [ "x" ]) ("D", [ "w" ]) ]
  in
  let got = Evaluate.ind_metrics ~truth found in
  Alcotest.(check int) "tp" 1 got.Evaluate.true_positives;
  Alcotest.(check int) "fp" 1 got.Evaluate.false_positives;
  Alcotest.(check int) "fn" 1 got.Evaluate.false_negatives;
  Alcotest.(check (float 1e-9)) "precision" 0.5 got.Evaluate.precision;
  Alcotest.(check (float 1e-9)) "recall" 0.5 got.Evaluate.recall

let test_empty_cases () =
  let got = Evaluate.ind_metrics ~truth:[] [] in
  Alcotest.(check (float 1e-9)) "vacuous precision" 1.0 got.Evaluate.precision;
  Alcotest.(check (float 1e-9)) "vacuous recall" 1.0 got.Evaluate.recall;
  let missed = Evaluate.ind_metrics ~truth:[ ind ("A", [ "x" ]) ("B", [ "y" ]) ] [] in
  Alcotest.(check (float 1e-9)) "nothing found precision" 1.0
    missed.Evaluate.precision;
  Alcotest.(check (float 1e-9)) "nothing found recall" 0.0 missed.Evaluate.recall;
  Alcotest.(check (float 1e-9)) "f1 zero" 0.0 missed.Evaluate.f1

let test_modulo_implication () =
  (* truth A<<C recovered transitively via A<<B<<C *)
  let truth = [ ind ("A", [ "x" ]) ("C", [ "z" ]) ] in
  let found =
    [ ind ("A", [ "x" ]) ("B", [ "y" ]); ind ("B", [ "y" ]) ("C", [ "z" ]) ]
  in
  let strict = Evaluate.ind_metrics ~truth found in
  Alcotest.(check int) "strict misses it" 0 strict.Evaluate.true_positives;
  let relaxed = Evaluate.ind_metrics ~modulo_implication:true ~truth found in
  Alcotest.(check int) "implication credits it" 1 relaxed.Evaluate.true_positives;
  (* found INDs not implied by truth are false positives either way *)
  Alcotest.(check int) "found extras counted" 2 relaxed.Evaluate.false_positives

let test_fd_attr_level () =
  let truth = [ fd "R" [ "a" ] [ "b"; "c" ] ] in
  let found = [ fd "R" [ "a" ] [ "b" ]; fd "R" [ "a" ] [ "d" ] ] in
  let got = Evaluate.fd_metrics ~truth ~found in
  Alcotest.(check int) "tp: b" 1 got.Evaluate.true_positives;
  Alcotest.(check int) "fn: c" 1 got.Evaluate.false_negatives;
  Alcotest.(check int) "fp: d" 1 got.Evaluate.false_positives

let test_clean_pipeline_scores_perfectly () =
  let g = Gen_schema.generate Gen_schema.default_spec in
  let r =
    Dbre.Pipeline.run g.Gen_schema.db
      (Dbre.Job_spec.Equijoins g.Gen_schema.equijoins)
  in
  let im =
    Evaluate.ind_metrics ~truth:g.Gen_schema.truth.Gen_schema.planted_inds
      r.Dbre.Pipeline.ind_result.Dbre.Ind_discovery.inds
  in
  let fm =
    Evaluate.fd_metrics ~truth:g.Gen_schema.truth.Gen_schema.planted_fds
      ~found:r.Dbre.Pipeline.rhs_result.Dbre.Rhs_discovery.fds
  in
  Alcotest.(check (float 1e-9)) "ind f1" 1.0 im.Evaluate.f1;
  Alcotest.(check (float 1e-9)) "fd recall" 1.0 fm.Evaluate.recall

let suite =
  [
    Alcotest.test_case "perfect recovery" `Quick test_perfect_recovery;
    Alcotest.test_case "partial recovery" `Quick test_partial_ind;
    Alcotest.test_case "empty cases" `Quick test_empty_cases;
    Alcotest.test_case "modulo implication" `Quick test_modulo_implication;
    Alcotest.test_case "fd attribute-level credit" `Quick test_fd_attr_level;
    Alcotest.test_case "clean pipeline scores 1.0" `Quick test_clean_pipeline_scores_perfectly;
  ]
