open Relational
open Sqlx

let test_relation_of_create () =
  let ct =
    match
      Parser.parse_statement
        "CREATE TABLE T (id INT PRIMARY KEY, name VARCHAR(20) NOT NULL, dep \
         INT, UNIQUE (name, dep))"
    with
    | Ast.Create ct -> ct
    | _ -> Alcotest.fail "expected create"
  in
  let r = Ddl.relation_of_create ct in
  Alcotest.(check (list string)) "attrs" [ "id"; "name"; "dep" ] r.Relation.attrs;
  Alcotest.(check bool) "pk is unique" true (Relation.is_key r [ "id" ]);
  Alcotest.(check bool) "table unique" true (Relation.is_key r [ "dep"; "name" ]);
  Alcotest.(check bool) "pk implies not null" true
    (List.mem "id" r.Relation.not_nulls);
  Alcotest.(check bool) "declared not null" true
    (List.mem "name" r.Relation.not_nulls);
  Alcotest.(check bool) "typed" true
    (Domain.equal Domain.Int (Relation.domain_of r "id"))

let test_foreign_keys () =
  let schema, fks =
    Ddl.schema_of_script
      "CREATE TABLE A (id INT PRIMARY KEY);\n\
       CREATE TABLE B (id INT PRIMARY KEY, a INT, FOREIGN KEY (a) REFERENCES \
       A (id));"
  in
  Alcotest.(check int) "two relations" 2 (Schema.size schema);
  match fks with
  | [ ("B", [ "a" ], "A", [ "id" ]) ] -> ()
  | _ -> Alcotest.fail "foreign key shape"

let test_load_script () =
  let db =
    Ddl.load_script
      "CREATE TABLE T (id INT PRIMARY KEY, v VARCHAR(8));\n\
       INSERT INTO T (id, v) VALUES (1, 'x'), (2, 'y');\n\
       INSERT INTO T VALUES (3, 'z');"
  in
  Alcotest.(check int) "rows" 3 (Database.cardinality db "T");
  Alcotest.(check int) "distinct v" 3 (Database.count_distinct db "T" [ "v" ])

let test_load_partial_columns () =
  let db =
    Ddl.load_script
      "CREATE TABLE T (id INT, v VARCHAR(8));\nINSERT INTO T (id) VALUES (1);"
  in
  let rows = Table.rows (Database.table db "T") in
  Alcotest.(check bool) "missing column null" true (Value.is_null rows.(0).(1))

let test_load_errors () =
  let e =
    Helpers.expect_error "unknown table" Error.Unknown_relation (fun () ->
        Ddl.load_script "CREATE TABLE T (a INT); INSERT INTO U VALUES (1);")
  in
  Alcotest.(check (option string)) "names the table" (Some "U") e.Error.relation;
  ignore
    (Helpers.expect_error "host variable in VALUES" Error.Sql_parse (fun () ->
         Ddl.load_script "CREATE TABLE T (a INT); INSERT INTO T VALUES (:h);"));
  ignore
    (Helpers.expect_error "VALUES width mismatch" Error.Sql_parse (fun () ->
         Ddl.load_script "CREATE TABLE T (a INT); INSERT INTO T VALUES (1, 2);"))

let test_paper_ddl () =
  (* the §5 schema as stored in this repository *)
  let schema, _ = Ddl.schema_of_script Workload.Paper_example.ddl in
  Alcotest.(check int) "four relations" 4 (Schema.size schema);
  Alcotest.(check bool) "composite key parsed" true
    (Schema.is_key schema "HEmployee" [ "date"; "no" ]);
  Alcotest.(check bool) "hyphenated attribute" true
    (Relation.has_attr (Schema.find_exn schema "Assignment") "project-name");
  Alcotest.(check bool) "location not null" true
    (Schema.attr_not_null schema "Department" "location")

let suite =
  [
    Alcotest.test_case "relation of create" `Quick test_relation_of_create;
    Alcotest.test_case "foreign keys" `Quick test_foreign_keys;
    Alcotest.test_case "load script" `Quick test_load_script;
    Alcotest.test_case "partial column insert" `Quick test_load_partial_columns;
    Alcotest.test_case "load errors" `Quick test_load_errors;
    Alcotest.test_case "paper ddl" `Quick test_paper_ddl;
  ]
