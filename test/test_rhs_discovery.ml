open Relational
open Helpers
open Dbre

(* W(id key, ref, payload, extra, strict): ref -> payload holds,
   ref -> extra fails, strict is NOT NULL while ref is nullable *)
let db () =
  database
    [
      ( Relation.make ~uniques:[ [ "id" ] ] ~not_nulls:[ "strict" ] "W"
          [ "id"; "ref"; "payload"; "extra"; "strict" ],
        [
          [ vi 1; vi 10; vs "p10"; vs "a"; vs "s" ];
          [ vi 2; vi 20; vs "p20"; vs "a"; vs "s" ];
          [ vi 3; vi 10; vs "p10"; vs "b"; vs "s" ];
          [ vi 4; vnull; vnull; vs "b"; vs "s" ];
        ] );
    ]

let cand rel a = Attribute.single rel a

let test_fd_elicited_with_pruning () =
  let r =
    Rhs_discovery.run Oracle.automatic (db ()) ~lhs:[ cand "W" "ref" ] ~hidden:[]
  in
  check_sorted_fds "fd found" [ fd "W" [ "ref" ] [ "payload" ] ]
    r.Rhs_discovery.fds;
  match r.Rhs_discovery.steps with
  | [ { Rhs_discovery.pruned_rhs; _ } ] ->
      (* id (key) removed, strict (not null vs nullable lhs) removed *)
      Alcotest.(check (list string)) "tested T" [ "payload"; "extra" ] pruned_rhs
  | _ -> Alcotest.fail "one step expected"

let test_not_null_kept_when_lhs_total () =
  (* make ref not-null: strict stays in T *)
  let db =
    database
      [
        ( Relation.make ~uniques:[ [ "id" ] ] ~not_nulls:[ "ref"; "strict" ] "W"
            [ "id"; "ref"; "strict" ],
          [ [ vi 1; vi 10; vs "s10" ]; [ vi 2; vi 10; vs "s10" ] ] );
      ]
  in
  let r = Rhs_discovery.run Oracle.automatic db ~lhs:[ cand "W" "ref" ] ~hidden:[] in
  match r.Rhs_discovery.steps with
  | [ { Rhs_discovery.pruned_rhs = [ "strict" ]; outcome = Rhs_discovery.Fd_elicited _; _ } ] -> ()
  | _ -> Alcotest.fail "expected strict tested and FD found"

let test_empty_rhs_becomes_hidden () =
  let r =
    Rhs_discovery.run Oracle.automatic (db ()) ~lhs:[ cand "W" "extra" ] ~hidden:[]
  in
  Alcotest.(check (list fd_t)) "no fd" [] r.Rhs_discovery.fds;
  Alcotest.(check (list attr)) "became hidden" [ cand "W" "extra" ]
    r.Rhs_discovery.hidden

let test_empty_rhs_refused () =
  let r =
    Rhs_discovery.run Oracle.skeptical (db ()) ~lhs:[ cand "W" "extra" ] ~hidden:[]
  in
  Alcotest.(check (list attr)) "dropped" [] r.Rhs_discovery.hidden;
  match r.Rhs_discovery.steps with
  | [ { Rhs_discovery.outcome = Rhs_discovery.Dropped; _ } ] -> ()
  | _ -> Alcotest.fail "expected dropped"

let test_hidden_with_fd_leaves_h () =
  let r =
    Rhs_discovery.run Oracle.automatic (db ()) ~lhs:[] ~hidden:[ cand "W" "ref" ]
  in
  check_sorted_fds "fd found" [ fd "W" [ "ref" ] [ "payload" ] ] r.Rhs_discovery.fds;
  Alcotest.(check (list attr)) "left H" [] r.Rhs_discovery.hidden

let test_hidden_without_fd_stays () =
  let r =
    Rhs_discovery.run Oracle.automatic (db ()) ~lhs:[] ~hidden:[ cand "W" "extra" ]
  in
  Alcotest.(check (list attr)) "stays" [ cand "W" "extra" ] r.Rhs_discovery.hidden;
  match r.Rhs_discovery.steps with
  | [ { Rhs_discovery.outcome = Rhs_discovery.Already_hidden; _ } ] -> ()
  | _ -> Alcotest.fail "expected already-hidden"

let test_enforcement () =
  (* expert enforces ref -> extra although the data violates it *)
  let o =
    {
      Oracle.automatic with
      Oracle.enforce_fd = (fun ~rel:_ ~lhs:_ ~attr -> attr = "extra");
    }
  in
  let r = Rhs_discovery.run o (db ()) ~lhs:[ cand "W" "ref" ] ~hidden:[] in
  check_sorted_fds "enforced rhs included"
    [ fd "W" [ "ref" ] [ "extra"; "payload" ] ]
    r.Rhs_discovery.fds

let test_validation_rejection () =
  let o = { Oracle.automatic with Oracle.validate_fd = (fun _ -> false) } in
  let r = Rhs_discovery.run o (db ()) ~lhs:[ cand "W" "ref" ] ~hidden:[] in
  Alcotest.(check (list fd_t)) "rejected" [] r.Rhs_discovery.fds;
  match r.Rhs_discovery.steps with
  | [ { Rhs_discovery.outcome = Rhs_discovery.Dropped; _ } ] -> ()
  | _ -> Alcotest.fail "expected dropped after rejection"

let test_unknown_relation () =
  let r =
    Rhs_discovery.run Oracle.automatic (db ()) ~lhs:[ cand "Ghost" "x" ] ~hidden:[]
  in
  Alcotest.(check (list fd_t)) "nothing" [] r.Rhs_discovery.fds

let test_multi_attr_candidate () =
  let db =
    database
      [
        ( Relation.make ~uniques:[ [ "id" ] ] "M" [ "id"; "x"; "y"; "v" ],
          [
            [ vi 1; vi 1; vi 1; vs "a" ];
            [ vi 2; vi 1; vi 1; vs "a" ];
            [ vi 3; vi 1; vi 2; vs "b" ];
          ] );
      ]
  in
  let r =
    Rhs_discovery.run Oracle.automatic db
      ~lhs:[ Attribute.make "M" [ "x"; "y" ] ]
      ~hidden:[]
  in
  check_sorted_fds "composite lhs" [ fd "M" [ "x"; "y" ] [ "v" ] ] r.Rhs_discovery.fds

let test_engines_agree () =
  let for_engine engine =
    (Rhs_discovery.run ~engine Oracle.automatic (db ())
       ~lhs:[ cand "W" "ref" ] ~hidden:[])
      .Rhs_discovery.fds
  in
  check_sorted_fds "naive = partition"
    (for_engine Relational.Engine.naive)
    (for_engine Relational.Engine.partition);
  check_sorted_fds "naive = columnar"
    (for_engine Relational.Engine.naive)
    (for_engine Relational.Engine.columnar)

let suite =
  [
    Alcotest.test_case "fd elicited with pruning" `Quick test_fd_elicited_with_pruning;
    Alcotest.test_case "not-null kept for total lhs" `Quick test_not_null_kept_when_lhs_total;
    Alcotest.test_case "empty rhs becomes hidden" `Quick test_empty_rhs_becomes_hidden;
    Alcotest.test_case "empty rhs refused" `Quick test_empty_rhs_refused;
    Alcotest.test_case "hidden with fd leaves H" `Quick test_hidden_with_fd_leaves_h;
    Alcotest.test_case "hidden without fd stays" `Quick test_hidden_without_fd_stays;
    Alcotest.test_case "expert enforcement" `Quick test_enforcement;
    Alcotest.test_case "expert rejection" `Quick test_validation_rejection;
    Alcotest.test_case "unknown relation" `Quick test_unknown_relation;
    Alcotest.test_case "composite candidate" `Quick test_multi_attr_candidate;
    Alcotest.test_case "engines agree" `Quick test_engines_agree;
  ]
