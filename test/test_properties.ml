(* Property-based suites (qcheck) over the core data structures and the
   dependency-checking engines. *)

open Relational
open Deps

(* ---------- generators ---------- *)

let attr_pool = [ "a"; "b"; "c"; "d"; "e" ]

let gen_attr = QCheck.Gen.oneofl attr_pool

let gen_attr_set =
  QCheck.Gen.(map Attribute.Names.normalize (list_size (int_range 1 3) gen_attr))

let gen_fd =
  QCheck.Gen.(
    let* lhs = gen_attr_set in
    let* rhs = gen_attr_set in
    let rhs' = Attribute.Names.diff rhs lhs in
    if rhs' = [] then
      let leftover = Attribute.Names.diff attr_pool lhs in
      match leftover with
      | [] -> return None
      | x :: _ -> return (Some (Fd.make "R" lhs [ x ]))
    else return (Some (Fd.make "R" lhs rhs')))

let gen_fds =
  QCheck.Gen.(
    map (List.filter_map Fun.id) (list_size (int_range 0 6) gen_fd))

let arb_fds = QCheck.make ~print:(fun fds -> String.concat "; " (List.map Fd.to_string fds)) gen_fds

let arb_attr_set =
  QCheck.make ~print:Attribute.Names.to_string gen_attr_set

(* random small tables over attrs a..e with values from a tiny domain so
   that dependencies sometimes hold *)
(* columns a,b hold small ints (or NULL), columns c,d,e small strings (or
   NULL) — homogeneous columns keep CSV round-trips exact *)
let gen_cell i =
  QCheck.Gen.(
    if i < 2 then
      frequency
        [ (5, map (fun v -> Value.Int v) (int_range 0 3)); (1, return Value.Null) ]
    else
      frequency
        [
          (5, map (fun s -> Value.String s) (oneofl [ "x"; "y"; "z" ]));
          (1, return Value.Null);
        ])

let gen_row = QCheck.Gen.(flatten_l (List.init (List.length attr_pool) gen_cell))

let gen_table =
  QCheck.Gen.(
    let* n_rows = int_range 0 25 in
    let* rows = list_repeat n_rows gen_row in
    return
      (let rel = Relation.make "R" attr_pool in
       let t = Table.create rel in
       List.iter (Table.insert t) rows;
       t))

let print_table t =
  String.concat "\n"
    (List.map
       (fun row -> String.concat "," (List.map Value.to_string row))
       (Table.to_lists t))

let arb_table = QCheck.make ~print:print_table gen_table

(* NULL-free variant: the TANE engine's NULL-as-value semantics coincide
   with the naive engine only on NULL-free extensions *)
let gen_cell_no_null i =
  QCheck.Gen.(
    if i < 2 then map (fun v -> Value.Int v) (int_range 0 3)
    else map (fun s -> Value.String s) (oneofl [ "x"; "y"; "z" ]))

let gen_table_no_null =
  QCheck.Gen.(
    let* n_rows = int_range 0 25 in
    let* rows =
      list_repeat n_rows
        (flatten_l (List.init (List.length attr_pool) gen_cell_no_null))
    in
    return
      (let rel = Relation.make "R" attr_pool in
       let t = Table.create rel in
       List.iter (Table.insert t) rows;
       t))

let arb_table_no_null = QCheck.make ~print:print_table gen_table_no_null

let gen_value =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) (int_range (-1000) 1000);
        map (fun f -> Value.Float f) (float_bound_inclusive 100.0);
        map (fun s -> Value.String s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 6));
        map2 (fun m d -> Value.date 2020 (1 + (m mod 12)) (1 + (d mod 28))) nat nat;
      ])

let arb_value = QCheck.make ~print:Value.to_string gen_value

let arb_value_triple = QCheck.triple arb_value arb_value arb_value

(* ---------- properties ---------- *)

let count = 300

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* value ordering is a total order *)
let value_order_props =
  [
    prop "compare reflexive" arb_value (fun v -> Value.compare v v = 0);
    prop "compare antisymmetric" (QCheck.pair arb_value arb_value) (fun (a, b) ->
        Value.compare a b = -Value.compare b a);
    prop "compare transitive-ish" arb_value_triple (fun (a, b, c) ->
        (* if a<=b and b<=c then a<=c *)
        QCheck.assume (Value.compare a b <= 0 && Value.compare b c <= 0);
        Value.compare a c <= 0);
    prop "hash respects equal" (QCheck.pair arb_value arb_value) (fun (a, b) ->
        (not (Value.equal a b)) || Value.hash a = Value.hash b);
  ]

(* closure laws *)
let closure_props =
  [
    prop "closure extensive" (QCheck.pair arb_fds arb_attr_set) (fun (fds, x) ->
        Attribute.Names.subset x (Closure.closure fds x));
    prop "closure idempotent" (QCheck.pair arb_fds arb_attr_set) (fun (fds, x) ->
        let c = Closure.closure fds x in
        Attribute.Names.equal c (Closure.closure fds c));
    prop "closure monotone" (QCheck.triple arb_fds arb_attr_set arb_attr_set)
      (fun (fds, x, y) ->
        let xy = Attribute.Names.union x y in
        Attribute.Names.subset (Closure.closure fds x) (Closure.closure fds xy));
    prop "minimal cover equivalent" arb_fds (fun fds ->
        Closure.equivalent fds (Closure.minimal_cover fds));
    prop "candidate keys are superkeys" arb_fds (fun fds ->
        List.for_all
          (fun k -> Closure.is_superkey fds ~all:attr_pool k)
          (Closure.candidate_keys fds ~all:attr_pool));
    prop "candidate keys are pairwise incomparable" arb_fds (fun fds ->
        let keys = Closure.candidate_keys fds ~all:attr_pool in
        List.for_all
          (fun k1 ->
            List.for_all
              (fun k2 ->
                Attribute.Names.equal k1 k2
                || not (Attribute.Names.subset k1 k2))
              keys)
          keys);
    prop "every key determines every attribute" arb_fds (fun fds ->
        match Closure.candidate_keys fds ~all:attr_pool with
        | [] -> false (* there is always at least one key *)
        | keys ->
            List.for_all
              (fun k ->
                Attribute.Names.equal (Closure.closure fds k)
                  (Attribute.Names.normalize attr_pool))
              keys);
  ]

(* FD engines agree with the specification *)
let fd_engine_props =
  [
    prop "naive = spec" (QCheck.pair arb_table arb_attr_set) (fun (t, lhs) ->
        let rhs = Attribute.Names.diff attr_pool lhs in
        QCheck.assume (rhs <> []);
        let f = Fd.make "R" lhs rhs in
        Fd_infer.holds_naive t f = Fd.satisfied_by t f);
    prop "partition = spec" (QCheck.pair arb_table arb_attr_set) (fun (t, lhs) ->
        let rhs = Attribute.Names.diff attr_pool lhs in
        QCheck.assume (rhs <> []);
        let f = Fd.make "R" lhs rhs in
        Fd_infer.holds_partition t f = Fd.satisfied_by t f);
    prop "error rate zero iff holds" (QCheck.pair arb_table arb_attr_set)
      (fun (t, lhs) ->
        let rhs = Attribute.Names.diff attr_pool lhs in
        QCheck.assume (rhs <> []);
        let f = Fd.make "R" lhs rhs in
        Fd.satisfied_by t f = (Fd_infer.error_rate t f = 0.0));
    prop "tane = discover on null-free tables" arb_table_no_null (fun t ->
        let d, _ = Fd_infer.discover ~max_lhs:3 ~rel:"R" t in
        let tn, _ = Fd_infer.discover_tane ~max_lhs:3 ~rel:"R" t in
        List.sort Fd.compare d = List.sort Fd.compare tn);
    prop "discovered fds hold and are minimal" arb_table (fun t ->
        let fds, _ = Fd_infer.discover ~max_lhs:2 ~rel:"R" t in
        List.for_all (Fd.satisfied_by t) fds
        && List.for_all
             (fun (f : Fd.t) ->
               (* removing any lhs attr breaks it (minimality) *)
               List.length f.Fd.lhs = 1
               || List.for_all
                    (fun a ->
                      let smaller = Attribute.Names.diff f.Fd.lhs [ a ] in
                      not
                        (List.for_all
                           (fun b ->
                             Fd.satisfied_by t (Fd.make "R" smaller [ b ]))
                           f.Fd.rhs))
                    f.Fd.lhs)
             fds);
  ]

(* partitions *)
let partition_props =
  [
    prop "product agrees with direct partition"
      (QCheck.triple arb_table arb_attr_set arb_attr_set) (fun (t, x, y) ->
        let px = Partition.of_table t x in
        let py = Partition.of_table t y in
        let direct = Partition.of_table t (Attribute.Names.union x y) in
        let prod = Partition.product px py in
        Partition.error direct = Partition.error prod
        && Partition.num_groups direct = Partition.num_groups prod);
    prop "refinement only shrinks error" (QCheck.pair arb_table arb_attr_set)
      (fun (t, x) ->
        let more = Attribute.Names.union x [ "e" ] in
        Partition.error (Partition.of_table t more)
        <= Partition.error (Partition.of_table t x));
    prop "rank counts distinct groupings" arb_table (fun t ->
        let p = Partition.of_table t [ "a" ] in
        (* rank = number of distinct 'a' values with NULL as a value *)
        let g = Table.group_rows t [ "a" ] in
        Partition.rank p = Hashtbl.length g);
  ]

(* IND count-based test = materialized test *)
let ind_props =
  [
    prop "count-based = materialized" (QCheck.pair arb_table arb_table)
      (fun (t1, t2) ->
        let db =
          let schema =
            Schema.of_relations
              [ Relation.make "T1" attr_pool; Relation.make "T2" attr_pool ]
          in
          let db = Database.create schema in
          Array.iter (fun r -> Table.insert_tuple (Database.table db "T1") r) (Table.rows t1);
          Array.iter (fun r -> Table.insert_tuple (Database.table db "T2") r) (Table.rows t2);
          db
        in
        let i = Ind.make ("T1", [ "a" ]) ("T2", [ "b" ]) in
        Ind.satisfied db i = Ind.satisfied_materialized db i);
    prop "join count bounded by both sides" (QCheck.pair arb_table arb_table)
      (fun (t1, t2) ->
        let n = Table.equijoin_distinct_count t1 [ "a" ] t2 [ "b" ] in
        n <= Table.count_distinct t1 [ "a" ] && n <= Table.count_distinct t2 [ "b" ]);
    prop "join count symmetric" (QCheck.pair arb_table arb_table) (fun (t1, t2) ->
        Table.equijoin_distinct_count t1 [ "a" ] t2 [ "b" ]
        = Table.equijoin_distinct_count t2 [ "b" ] t1 [ "a" ]);
  ]

(* CSV: dump/load identity on typed tables *)
let csv_props =
  [
    prop "dump/load preserves typed tables" arb_table (fun t ->
        (* type every column as its inferred domain so parsing is exact;
           mixed columns fall back to Unknown which may re-infer values,
           so restrict to tables where inference is stable *)
        let rel = Table.schema t in
        let cols = rel.Relation.attrs in
        let domains =
          List.map
            (fun a ->
              let i = Relation.attr_index rel a in
              ( a,
                Domain.infer_column
                  (Array.to_list (Array.map (fun r -> r.(i)) (Table.rows t))) ))
            cols
        in
        QCheck.assume
          (List.for_all
             (fun (_, d) -> not (Domain.equal d Domain.Float))
             domains);
        let typed = Relation.make ~domains "R" cols in
        match Csv.load typed (Csv.dump_table t) with
        | Error _ -> false
        | Ok (reloaded, _) -> Table.to_lists reloaded = Table.to_lists t);
  ]

(* equi-join extraction: generated navigation queries are recovered *)
let equijoin_props =
  let gen_query =
    QCheck.Gen.(
      let* a1 = gen_attr in
      let* a2 = gen_attr in
      return (a1, a2))
  in
  let arb = QCheck.make ~print:(fun (a, b) -> a ^ "=" ^ b) gen_query in
  [
    prop "emitted query is re-extracted" arb (fun (a1, a2) ->
        let schema =
          Schema.of_relations
            [ Relation.make "T1" attr_pool; Relation.make "T2" attr_pool ]
        in
        let sql =
          Printf.sprintf "SELECT T1.a FROM T1, T2 WHERE T1.%s = T2.%s" a1 a2
        in
        Sqlx.Equijoin.of_script schema sql
        = [ Sqlx.Equijoin.make ("T1", [ a1 ]) ("T2", [ a2 ]) ]);
  ]

(* rng *)
let rng_props =
  [
    prop "int in bounds" (QCheck.pair QCheck.small_int QCheck.pos_int)
      (fun (seed, bound) ->
        QCheck.assume (bound > 0);
        let v = Workload.Rng.int (Workload.Rng.create (Int64.of_int seed)) bound in
        v >= 0 && v < bound);
    prop "shuffle is a permutation" QCheck.(list small_int) (fun l ->
        let rng = Workload.Rng.create 1L in
        List.sort compare (Workload.Rng.shuffle rng l) = List.sort compare l);
  ]

let suite =
  value_order_props @ closure_props @ fd_engine_props @ partition_props
  @ ind_props @ csv_props @ equijoin_props @ rng_props
