(* Source abstraction: the four source shapes are one seam. The same
   extension loaded as a CSV file, inline text, an adopted in-memory
   table or a chunked reader yields byte-identical tables; quarantine
   behavior is shape-independent; the In_memory schema check refuses
   extensions that disagree with the dictionary. *)

open Relational

let rel () =
  Relation.make
    ~domains:[ ("a", Domain.Int); ("b", Domain.String) ]
    ~uniques:[ [ "a" ] ] "R" [ "a"; "b" ]

let csv = "a,b\n1,x\n2,y\n3,z\n"

let load ?mode source =
  match Source.load ?mode (rel ()) source with
  | Ok (table, report) -> (table, report)
  | Error e -> Alcotest.failf "load %s: %s" (Source.describe source)
                 (Error.to_string e)

let dump source = Csv.dump_table (fst (load source))

let with_temp_file contents f =
  let path = Filename.temp_file "dbre_source" ".csv" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc contents);
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* split [s] into chunks of [n] bytes: boundaries fall mid-field and
   mid-line, which a reader source must tolerate *)
let chunks_of n s =
  let rec go off acc =
    if off >= String.length s then List.rev acc
    else
      let len = min n (String.length s - off) in
      go (off + len) (String.sub s off len :: acc)
  in
  go 0 []

let test_four_shapes_identical () =
  let baseline = dump (Source.csv_inline csv) in
  with_temp_file csv (fun path ->
      Alcotest.(check string) "csv-file = csv-inline" baseline
        (dump (Source.csv_file path)));
  let table, _ = load (Source.csv_inline csv) in
  Alcotest.(check string) "in-memory = csv-inline" baseline
    (dump (Source.in_memory table));
  List.iter
    (fun n ->
      Alcotest.(check string)
        (Printf.sprintf "reader(%d-byte chunks) = csv-inline" n)
        baseline
        (dump (Source.of_strings ~name:"test" (chunks_of n csv))))
    [ 1; 2; 3; 5; 1024 ]

let test_in_memory_schema_check () =
  let other =
    Relation.make ~domains:[ ("a", Domain.Int); ("c", Domain.String) ] "R"
      [ "a"; "c" ]
  in
  let table, _ =
    match Csv.load other "a,c\n1,x\n" with
    | Ok r -> r
    | Error e -> Alcotest.fail (Error.to_string e)
  in
  match Source.load (rel ()) (Source.in_memory table) with
  | Ok _ -> Alcotest.fail "adopted a table with the wrong attributes"
  | Error e ->
      Alcotest.(check string) "typed refusal" "type-mismatch"
        (Error.code_to_string e.Error.code)

let test_quarantine_parity () =
  (* row 2 is ill-typed, row 4 has the wrong width: every shape must
     keep the same survivors and report the same casualties *)
  let dirty = "a,b\n1,x\noops,y\n2,z\n3\n4,w\n" in
  let reports =
    List.map
      (fun source ->
        let table, report = load ~mode:`Quarantine source in
        let r = Option.get report in
        (Csv.dump_table table, r.Quarantine.kept, Quarantine.count r))
      [
        Source.csv_inline dirty;
        Source.of_strings ~name:"dirty" (chunks_of 4 dirty);
      ]
  in
  with_temp_file dirty (fun path ->
      let table, report = load ~mode:`Quarantine (Source.csv_file path) in
      let r = Option.get report in
      let file = (Csv.dump_table table, r.Quarantine.kept, Quarantine.count r) in
      List.iter
        (fun (d, kept, count) ->
          let fd, fkept, fcount = file in
          Alcotest.(check string) "same survivors" fd d;
          Alcotest.(check int) "same kept" fkept kept;
          Alcotest.(check int) "same quarantine count" fcount count)
        reports);
  let _, kept, _ = List.hd reports in
  Alcotest.(check int) "three rows survive" 3 kept

let test_missing_file_is_io_error () =
  match Source.load (rel ()) (Source.csv_file "/nonexistent/path.csv") with
  | Ok _ -> Alcotest.fail "loaded a file that does not exist"
  | Error e ->
      Alcotest.(check string) "typed io error" "io-error"
        (Error.code_to_string e.Error.code)

let test_reader_failure_is_io_error () =
  let source =
    Source.reader ~name:"flaky" (fun () ->
        fun () -> raise (Sys_error "connection reset"))
  in
  match Source.load (rel ()) source with
  | Ok _ -> Alcotest.fail "loaded from a reader that raised"
  | Error e ->
      Alcotest.(check string) "typed io error" "io-error"
        (Error.code_to_string e.Error.code)

let test_describe () =
  Alcotest.(check string) "inline" "csv-inline:12b"
    (Source.describe (Source.csv_inline "a,b\n1,x\n2,y\n"));
  Alcotest.(check string) "file" "csv-file:/tmp/r.csv"
    (Source.describe (Source.csv_file "/tmp/r.csv"));
  Alcotest.(check string) "reader" "reader:cursor"
    (Source.describe (Source.reader ~name:"cursor" (fun () -> fun () -> None)))

let suite =
  [
    Alcotest.test_case "four shapes load identically" `Quick
      test_four_shapes_identical;
    Alcotest.test_case "in-memory schema check" `Quick
      test_in_memory_schema_check;
    Alcotest.test_case "quarantine is shape-independent" `Quick
      test_quarantine_parity;
    Alcotest.test_case "missing file is a typed io error" `Quick
      test_missing_file_is_io_error;
    Alcotest.test_case "reader failure is a typed io error" `Quick
      test_reader_failure_is_io_error;
    Alcotest.test_case "describe" `Quick test_describe;
  ]
