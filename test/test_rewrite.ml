(* Legacy-query rewriting: queries over the 1NF schema keep their answers
   when rewritten against the restructured 3NF schema and run on the
   migrated data. *)

open Relational
open Sqlx
open Dbre

let setup () =
  let db = Workload.Paper_example.database () in
  let result =
    Pipeline.run
      ~config:
        {
          Pipeline.default_config with
          Pipeline.oracle = Workload.Paper_example.oracle ();
        }
      db
      (Job_spec.Equijoins (Workload.Paper_example.equijoins ()))
  in
  let plan = Rewrite.plan result in
  let migrated = Option.get result.Pipeline.restruct_result.Restruct.database in
  (plan, migrated)

let state = lazy (setup ())

let rows_of db sql = (Exec.run_string db sql).Algebra.rows

(* answers over the ORIGINAL database vs the rewritten query over the
   MIGRATED database must agree as multisets *)
let check_equivalent ?(only_non_null_lhs = false) name sql =
  let plan, migrated = Lazy.force state in
  let original_db = Workload.Paper_example.database () in
  let rewritten = Rewrite.sql plan sql in
  let before = List.sort compare (rows_of original_db sql) in
  let after = List.sort compare (rows_of migrated rewritten) in
  let before =
    (* rows whose split-join key was NULL lose their (all-NULL) moved
       values after the rewrite: drop all-null rows when asked *)
    if only_non_null_lhs then
      List.filter (fun row -> not (List.for_all Value.is_null row)) before
    else before
  in
  Alcotest.(check int) (name ^ ": cardinality") (List.length before)
    (List.length after);
  Alcotest.(check bool) (name ^ ": same rows") true (before = after)

let test_untouched_query_unchanged () =
  let plan, _ = Lazy.force state in
  let sql = "SELECT name FROM Person WHERE id = 3" in
  Alcotest.(check string) "no change" sql (Rewrite.sql plan sql)

let test_moved_projection () =
  let plan, _ = Lazy.force state in
  let rewritten = Rewrite.sql plan "SELECT skill FROM Department" in
  Alcotest.(check string) "join added"
    "SELECT __dbre0.skill FROM Department, Manager __dbre0 WHERE \
     Department.emp = __dbre0.emp"
    rewritten

let test_moved_in_where () =
  let plan, _ = Lazy.force state in
  let rewritten =
    Rewrite.sql plan "SELECT dep FROM Department WHERE proj = 'pr001'"
  in
  Alcotest.(check string) "where requalified"
    "SELECT Department.dep FROM Department, Manager __dbre0 WHERE \
     __dbre0.proj = 'pr001' AND Department.emp = __dbre0.emp"
    rewritten

let test_equivalence_projection () =
  (* departments 151..180 have NULL emp and hence NULL skill: they drop
     out after the rewrite, as a join would in any SQL engine *)
  check_equivalent ~only_non_null_lhs:true "skill projection"
    "SELECT skill FROM Department"

let test_equivalence_where () =
  check_equivalent "filter on moved attr"
    "SELECT dep FROM Department WHERE proj = 'pr001' ORDER BY dep"

let test_equivalence_mixed_columns () =
  check_equivalent "moved + kept columns"
    "SELECT dep, skill FROM Department WHERE emp = 7"

let test_equivalence_project_name () =
  check_equivalent "assignment project names"
    "SELECT DISTINCT project-name FROM Assignment WHERE emp = 12"

let test_equivalence_join_query () =
  check_equivalent "legacy join still works"
    "SELECT name FROM Person, HEmployee WHERE HEmployee.no = Person.id AND \
     HEmployee.salary > 1400 ORDER BY name"

let test_subquery_rewritten () =
  let plan, _ = Lazy.force state in
  let rewritten =
    Rewrite.sql plan
      "SELECT name FROM Person WHERE id IN (SELECT emp FROM Department \
       WHERE skill = 'sk-7')"
  in
  Alcotest.(check bool) "subquery gained the join" true
    (let needle = "Manager __dbre0" in
     let nl = String.length needle and l = String.length rewritten in
     let rec go i = i + nl <= l && (String.sub rewritten i nl = needle || go (i + 1)) in
     go 0)

let test_equivalence_subquery () =
  check_equivalent "subquery on moved attr"
    "SELECT name FROM Person WHERE id IN (SELECT emp FROM Department WHERE \
     skill = 'sk-7')"

let test_aggregate_rewrite () =
  check_equivalent "aggregate over moved attr"
    "SELECT COUNT(DISTINCT skill) FROM Department"

let test_alias_respected () =
  let plan, _ = Lazy.force state in
  let rewritten =
    Rewrite.sql plan "SELECT d.skill FROM Department d WHERE d.dep = 'd001'"
  in
  Alcotest.(check string) "user alias preserved"
    "SELECT __dbre0.skill FROM Department d, Manager __dbre0 WHERE d.dep = \
     'd001' AND d.emp = __dbre0.emp"
    rewritten

let suite =
  [
    Alcotest.test_case "untouched query unchanged" `Quick test_untouched_query_unchanged;
    Alcotest.test_case "moved projection" `Quick test_moved_projection;
    Alcotest.test_case "moved in where" `Quick test_moved_in_where;
    Alcotest.test_case "equivalence: projection" `Quick test_equivalence_projection;
    Alcotest.test_case "equivalence: where" `Quick test_equivalence_where;
    Alcotest.test_case "equivalence: mixed columns" `Quick test_equivalence_mixed_columns;
    Alcotest.test_case "equivalence: project-name" `Quick test_equivalence_project_name;
    Alcotest.test_case "equivalence: legacy join" `Quick test_equivalence_join_query;
    Alcotest.test_case "subquery rewritten" `Quick test_subquery_rewritten;
    Alcotest.test_case "equivalence: subquery" `Quick test_equivalence_subquery;
    Alcotest.test_case "aggregate" `Quick test_aggregate_rewrite;
    Alcotest.test_case "alias respected" `Quick test_alias_respected;
  ]
