(* Checkpoint/resume: a run with [~checkpoint_dir] leaves one artifact
   per stage; resuming from those artifacts reproduces the
   uncheckpointed result without consulting the expert again; corrupt
   checkpoints are silently recomputed. *)

open Dbre

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let fresh_dir name =
  rm_rf name;
  name

let hospital_config () =
  let s = Workload.Scenarios.hospital in
  {
    Pipeline.default_config with
    Pipeline.oracle = s.Workload.Scenarios.oracle ();
  }

let run_hospital ?checkpoint_dir ?resume_from () =
  let s = Workload.Scenarios.hospital in
  Pipeline.run ~config:(hospital_config ()) ?checkpoint_dir ?resume_from
    (s.Workload.Scenarios.database ())
    (Job_spec.Programs s.Workload.Scenarios.programs)

let all_stages =
  [
    Checkpoint.Ind; Checkpoint.Lhs; Checkpoint.Rhs; Checkpoint.Restruct;
    Checkpoint.Translate;
  ]

let test_checkpoint_files () =
  let dir = fresh_dir "_ckpt_files" in
  ignore (run_hospital ~checkpoint_dir:dir ());
  List.iter
    (fun stage ->
      let p = Checkpoint.path ~dir stage in
      Alcotest.(check bool) (p ^ " written") true (Sys.file_exists p))
    all_stages;
  Alcotest.(check bool) "translate marker valid" true
    (Checkpoint.translate_done ~dir);
  rm_rf dir

let test_resume_roundtrip () =
  let dir = fresh_dir "_ckpt_resume" in
  let baseline = run_hospital () in
  ignore (run_hospital ~checkpoint_dir:dir ());
  (* lose the last checkpoint: Translate must be recomputed from the
     restored Restruct artifact *)
  Sys.remove (Checkpoint.path ~dir Checkpoint.Translate);
  let resumed = run_hospital ~resume_from:dir () in
  Alcotest.(check string) "same EER schema"
    (Er.Text_render.to_string
       baseline.Pipeline.translate_result.Translate.eer)
    (Er.Text_render.to_string
       resumed.Pipeline.translate_result.Translate.eer);
  Alcotest.(check bool) "same normal forms" true
    (Pipeline.nf_report baseline = Pipeline.nf_report resumed);
  Alcotest.(check bool) "same elicited FDs" true
    (baseline.Pipeline.rhs_result.Rhs_discovery.fds
    = resumed.Pipeline.rhs_result.Rhs_discovery.fds);
  (* every stage came off disk: the expert was never consulted *)
  Alcotest.(check int) "no oracle events on resume" 0
    (List.length resumed.Pipeline.events);
  rm_rf dir

let test_corrupt_checkpoint_recomputed () =
  let dir = fresh_dir "_ckpt_corrupt" in
  let generate () =
    Workload.Gen_schema.generate Workload.Gen_schema.default_spec
  in
  let g = generate () in
  let baseline =
    Pipeline.run ~checkpoint_dir:dir g.Workload.Gen_schema.db
      (Job_spec.Equijoins g.Workload.Gen_schema.equijoins)
  in
  (* mangle the RHS-Discovery artifact: resume must recompute it *)
  Out_channel.with_open_bin (Checkpoint.path ~dir Checkpoint.Rhs) (fun oc ->
      Out_channel.output_string oc "((( not a checkpoint");
  let g2 = generate () in
  let resumed =
    Pipeline.run ~resume_from:dir g2.Workload.Gen_schema.db
      (Job_spec.Equijoins g2.Workload.Gen_schema.equijoins)
  in
  Alcotest.(check bool) "same INDs" true
    (baseline.Pipeline.ind_result.Ind_discovery.inds
    = resumed.Pipeline.ind_result.Ind_discovery.inds);
  Alcotest.(check bool) "same FDs after recompute" true
    (baseline.Pipeline.rhs_result.Rhs_discovery.fds
    = resumed.Pipeline.rhs_result.Rhs_discovery.fds);
  Alcotest.(check string) "same EER schema"
    (Er.Text_render.to_string
       baseline.Pipeline.translate_result.Translate.eer)
    (Er.Text_render.to_string resumed.Pipeline.translate_result.Translate.eer);
  rm_rf dir

let test_missing_dir_is_fresh_run () =
  (* resuming from a directory that does not exist just recomputes *)
  let baseline = run_hospital () in
  let resumed = run_hospital ~resume_from:"_ckpt_never_written" () in
  Alcotest.(check bool) "same FDs" true
    (baseline.Pipeline.rhs_result.Rhs_discovery.fds
    = resumed.Pipeline.rhs_result.Rhs_discovery.fds);
  Alcotest.(check bool) "expert consulted as usual" true
    (List.length resumed.Pipeline.events > 0)

let suite =
  [
    Alcotest.test_case "one artifact per stage" `Quick test_checkpoint_files;
    Alcotest.test_case "resume reproduces the run" `Quick test_resume_roundtrip;
    Alcotest.test_case "corrupt checkpoint recomputed" `Quick
      test_corrupt_checkpoint_recomputed;
    Alcotest.test_case "missing dir falls back to fresh run" `Quick
      test_missing_dir_is_fresh_run;
  ]
