(* The supervised execution runtime: token semantics, the hardened
   domain pool under injected execution faults (wedged jobs, crashing
   workers), and budget-tripped pipeline runs that degrade to typed
   partial results, checkpoint, and resume to artifacts identical to an
   unbudgeted run. The fuel trip is deterministic and — by the
   Supervise contract — lands on the same group boundary whatever the
   domain count, which the randomized prefix suite asserts at 1/2/4
   domains. *)

open Dbre
module Sexp = Relational.Sexp
module Pool = Relational.Domain_pool

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let fresh_dir name =
  rm_rf name;
  name

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let is_prefix short long =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> x = y && go (xs, ys)
  in
  go (short, long)

let generate () = Workload.Gen_schema.generate Workload.Gen_schema.default_spec

(* --- token semantics --- *)

let test_token_fuel () =
  let t = Supervise.create ~fuel:2 () in
  Alcotest.(check bool) "first poll passes" true (Supervise.poll t = None);
  Alcotest.(check bool) "second poll trips" true
    (Supervise.poll t = Some Supervise.Cancelled);
  Alcotest.(check bool) "latched for pool readers" true
    (Supervise.tripped t = Some Supervise.Cancelled);
  Alcotest.(check bool) "latched on later polls" true
    (Supervise.poll t = Some Supervise.Cancelled);
  let t0 = Supervise.create ~fuel:0 () in
  Alcotest.(check bool) "fuel 0 trips the first poll" true
    (Supervise.poll t0 = Some Supervise.Cancelled)

let test_token_limits () =
  let d = Supervise.create ~deadline_s:0.0 () in
  Unix.sleepf 0.002;
  (match Supervise.poll d with
  | Some (Supervise.Deadline { limit_s; elapsed_s }) ->
      Alcotest.(check bool) "deadline fields" true
        (limit_s = 0.0 && elapsed_s > 0.0)
  | _ -> Alcotest.fail "expected a deadline trip");
  let h = Supervise.create ~max_heap_words:1 () in
  (match Supervise.poll h with
  | Some (Supervise.Heap { limit_words; live_words }) ->
      Alcotest.(check bool) "heap fields" true
        (limit_words = 1 && live_words > 1)
  | _ -> Alcotest.fail "expected a heap trip");
  (match Supervise.check h with
  | () -> Alcotest.fail "check must raise on a tripped token"
  | exception Supervise.Interrupt (Supervise.Heap _) -> ());
  let e = Supervise.error_of ~stage:Error.Ind_discovery Supervise.Cancelled in
  Alcotest.(check bool) "error_of code" true
    (e.Error.code = Error.Resource_exhausted
    && e.Error.stage = Some Error.Ind_discovery)

let test_token_unlimited () =
  Alcotest.(check bool) "unlimited is inactive" false
    (Supervise.active Supervise.unlimited);
  Supervise.cancel Supervise.unlimited;
  Alcotest.(check bool) "unlimited cannot trip" true
    (Supervise.poll Supervise.unlimited = None);
  (* a fresh token with no limits is still cancellable *)
  let t = Supervise.create () in
  Alcotest.(check bool) "limitless token is active" true (Supervise.active t);
  Supervise.cancel t;
  Alcotest.(check bool) "cancel latches" true
    (Supervise.tripped t = Some Supervise.Cancelled)

(* --- pool hardening --- *)

let warm pool = ignore (Pool.map_array pool (fun x -> x) [| 1; 2; 3 |])

let test_pool_wedged_job () =
  let pool = Pool.create 2 in
  warm pool;
  let released = Atomic.make false in
  let attempts = Atomic.make 0 in
  (* the first attempt at element 0 wedges until [released]; every
     retry answers normally *)
  let f x =
    if x = 0 && Atomic.fetch_and_add attempts 1 = 0 then
      Workload.Faults.wedge_until released;
    x * 10
  in
  let rs =
    Pool.map_supervised pool ~timeout_s:0.05 ~retries:2 f [| 0; 1; 2; 3 |]
  in
  Alcotest.(check bool) "wedged task retried to completion" true
    (rs = [| Ok 0; Ok 10; Ok 20; Ok 30 |]);
  Alcotest.(check bool) "wedged worker written off and replaced" true
    (Pool.lost_workers pool >= 1);
  (* the replacement keeps the pool serviceable *)
  Alcotest.(check bool) "pool still serves batches" true
    (Pool.map_array pool (fun x -> x + 1) [| 1; 2; 3 |] = [| 2; 3; 4 |]);
  Atomic.set released true;
  Pool.shutdown pool;
  (* idempotent: a second shutdown is a no-op *)
  Pool.shutdown pool

let test_pool_crash_retry () =
  let pool = Pool.create 2 in
  warm pool;
  (* exactly one injected crash: the failed task must be retried *)
  let f = Workload.Faults.transient ~failures:1 (fun x -> x * x) in
  let rs = Pool.map_supervised pool ~retries:1 f [| 1; 2; 3; 4 |] in
  Alcotest.(check bool) "transient crash retried" true
    (rs = [| Ok 1; Ok 4; Ok 9; Ok 16 |]);
  (* a task that crashes on every attempt surfaces as [Crashed] without
     aborting the batch or the pool *)
  let g x = if x = 3 then failwith "boom" else x in
  let rs = Pool.map_supervised pool ~retries:1 g [| 1; 2; 3; 4 |] in
  Alcotest.(check bool) "healthy tasks unaffected" true
    (rs.(0) = Ok 1 && rs.(1) = Ok 2 && rs.(3) = Ok 4);
  (match rs.(2) with
  | Error (Pool.Crashed (Failure _)) -> ()
  | _ -> Alcotest.fail "expected Crashed (Failure _)");
  Alcotest.(check bool) "pool survives crashing tasks" true
    (Pool.map_array pool (fun x -> x + 1) [| 7 |] = [| 8 |]);
  Pool.shutdown pool

let test_pool_interrupted () =
  let pool = Pool.create 2 in
  warm pool;
  let s = Supervise.create () in
  Supervise.cancel s;
  let rs = Pool.map_supervised pool ~supervise:s (fun x -> x) [| 1; 2; 3 |] in
  Alcotest.(check bool) "tripped batch reports Interrupted" true
    (Array.for_all
       (function
         | Error (Pool.Interrupted Supervise.Cancelled) -> true | _ -> false)
       rs);
  Pool.shutdown pool

(* --- ingest budget --- *)

let test_csv_budget () =
  let rel =
    Relational.Relation.make "t" [ "a"; "b" ]
      ~domains:[ ("a", Relational.Domain.Int); ("b", Relational.Domain.Int) ]
  in
  let s = Supervise.create ~fuel:0 () in
  match Relational.Csv.load ~supervise:s rel "a,b\n1,2\n" with
  | Ok _ -> Alcotest.fail "expected a budget error"
  | Error e ->
      Alcotest.(check bool) "typed Resource_exhausted, no exception" true
        (e.Error.code = Error.Resource_exhausted)

(* --- randomized cancellation: deterministic prefix at 1/2/4 domains --- *)

let engine_for domains =
  if domains <= 1 then Engine.default
  else Engine.make ~parallelism:(Engine.Domains domains) ()

let run_with_fuel ~domains ~fuel =
  let g = generate () in
  let config =
    { Pipeline.default_config with Pipeline.engine = engine_for domains }
  in
  match
    Pipeline.run_checked ~config
      ~supervise:(Supervise.create ~fuel ())
      g.Workload.Gen_schema.db
      (Job_spec.Equijoins g.Workload.Gen_schema.equijoins)
  with
  | Ok r -> r
  | Error p ->
      Alcotest.failf "budgeted run failed: %s"
        (Error.to_string p.Pipeline.p_error)

let test_cancellation_prefix () =
  let full =
    let g = generate () in
    Pipeline.run g.Workload.Gen_schema.db
      (Job_spec.Equijoins g.Workload.Gen_schema.equijoins)
  in
  let rng = Workload.Rng.create 0x5eedL in
  let fuels = List.init 3 (fun _ -> 1 + Workload.Rng.int rng 30) in
  List.iter
    (fun fuel ->
      let base = run_with_fuel ~domains:1 ~fuel in
      let bi = base.Pipeline.ind_result in
      Alcotest.(check bool)
        (Printf.sprintf "fuel %d: IND steps are a prefix of the full run" fuel)
        true
        (is_prefix bi.Ind_discovery.steps
           full.Pipeline.ind_result.Ind_discovery.steps);
      Alcotest.(check bool)
        (Printf.sprintf "fuel %d: elicited INDs are a prefix" fuel)
        true
        (is_prefix bi.Ind_discovery.inds
           full.Pipeline.ind_result.Ind_discovery.inds);
      (* partial + unverified tail = exactly the input [Q] *)
      (match bi.Ind_discovery.exhausted with
      | Some _ ->
          Alcotest.(check int)
            (Printf.sprintf "fuel %d: no equi-join lost" fuel)
            (List.length full.Pipeline.equijoins)
            (List.length bi.Ind_discovery.steps
            + List.length bi.Ind_discovery.unverified)
      | None ->
          Alcotest.(check bool)
            (Printf.sprintf "fuel %d: complete IND has no unverified" fuel)
            true
            (bi.Ind_discovery.unverified = []));
      (* same fuel, more domains: byte-identical partial artifacts *)
      List.iter
        (fun domains ->
          let r = run_with_fuel ~domains ~fuel in
          let ri = r.Pipeline.ind_result in
          Alcotest.(check bool)
            (Printf.sprintf "fuel %d @ %d domains: same trip boundary" fuel
               domains)
            true
            (ri.Ind_discovery.steps = bi.Ind_discovery.steps
            && ri.Ind_discovery.inds = bi.Ind_discovery.inds
            && ri.Ind_discovery.unverified = bi.Ind_discovery.unverified
            && ri.Ind_discovery.exhausted = bi.Ind_discovery.exhausted
            && r.Pipeline.rhs_result.Rhs_discovery.unverified
               = base.Pipeline.rhs_result.Rhs_discovery.unverified
            && r.Pipeline.rhs_result.Rhs_discovery.fds
               = base.Pipeline.rhs_result.Rhs_discovery.fds))
        [ 2; 4 ])
    fuels

(* --- graceful degradation end to end --- *)

let test_partial_annotated () =
  (* cancel mid-elicitation: the run must still complete, with the
     partial stages annotated in the report and flagged by lint L206 *)
  let s = Workload.Scenarios.hospital in
  let supervise = Supervise.create () in
  let oracle =
    Workload.Faults.cancelling_oracle ~after:2 supervise
      (s.Workload.Scenarios.oracle ())
  in
  let config = { Pipeline.default_config with Pipeline.oracle = oracle } in
  match
    Pipeline.run_checked ~config ~supervise
      (s.Workload.Scenarios.database ())
      (Job_spec.Programs s.Workload.Scenarios.programs)
  with
  | Error p ->
      Alcotest.failf "partial-policy run failed: %s"
        (Error.to_string p.Pipeline.p_error)
  | Ok r ->
      let degraded =
        r.Pipeline.ind_result.Ind_discovery.unverified <> []
        || r.Pipeline.rhs_result.Rhs_discovery.unverified <> []
      in
      Alcotest.(check bool) "run degraded to a typed partial" true degraded;
      let md = Report.markdown r in
      Alcotest.(check bool) "report annotates the partial stage" true
        (contains ~sub:"Partial result" md);
      let diags = (Dbre_lint.Lint.verify r).Dbre_lint.Lint.diags in
      Alcotest.(check bool) "lint L206 names the degradation" true
        (List.exists
           (fun d -> d.Dbre_lint.Diagnostic.code = "L206")
           diags)

let test_fail_policy () =
  let g = generate () in
  let config =
    {
      Pipeline.default_config with
      Pipeline.engine = Engine.make ~on_exhausted:`Fail ();
    }
  in
  match
    Pipeline.run_checked ~config
      ~supervise:(Supervise.create ~fuel:1 ())
      g.Workload.Gen_schema.db
      (Job_spec.Equijoins g.Workload.Gen_schema.equijoins)
  with
  | Ok _ -> Alcotest.fail "`Fail policy must turn a trip into a stage error"
  | Error p ->
      Alcotest.(check bool) "typed Resource_exhausted failure" true
        (p.Pipeline.p_error.Error.code = Error.Resource_exhausted)

(* --- budget-partial checkpoints resume to identical artifacts --- *)

let test_partial_resume_identity () =
  let dir = fresh_dir "_supervise_resume" in
  let full =
    let g = generate () in
    Pipeline.run g.Workload.Gen_schema.db
      (Job_spec.Equijoins g.Workload.Gen_schema.equijoins)
  in
  let partial =
    let g = generate () in
    match
      Pipeline.run_checked
        ~supervise:(Supervise.create ~fuel:12 ())
        ~checkpoint_dir:dir g.Workload.Gen_schema.db
        (Job_spec.Equijoins g.Workload.Gen_schema.equijoins)
    with
    | Ok r -> r
    | Error p ->
        Alcotest.failf "budgeted run failed: %s"
          (Error.to_string p.Pipeline.p_error)
  in
  Alcotest.(check bool) "budgeted run left unverified work" true
    (partial.Pipeline.ind_result.Ind_discovery.unverified <> []
    || partial.Pipeline.rhs_result.Rhs_discovery.unverified <> []);
  let resumed =
    let g = generate () in
    Pipeline.run ~resume_from:dir g.Workload.Gen_schema.db
      (Job_spec.Equijoins g.Workload.Gen_schema.equijoins)
  in
  Alcotest.(check bool) "resumed run is complete" true
    (resumed.Pipeline.ind_result.Ind_discovery.unverified = []
    && resumed.Pipeline.ind_result.Ind_discovery.exhausted = None
    && resumed.Pipeline.rhs_result.Rhs_discovery.unverified = []
    && resumed.Pipeline.rhs_result.Rhs_discovery.exhausted = None);
  Alcotest.(check bool) "same IND artifact as the unbudgeted run" true
    (resumed.Pipeline.ind_result.Ind_discovery.inds
     = full.Pipeline.ind_result.Ind_discovery.inds
    && resumed.Pipeline.ind_result.Ind_discovery.steps
       = full.Pipeline.ind_result.Ind_discovery.steps);
  Alcotest.(check bool) "same FD artifact as the unbudgeted run" true
    (resumed.Pipeline.rhs_result.Rhs_discovery.fds
     = full.Pipeline.rhs_result.Rhs_discovery.fds
    && resumed.Pipeline.rhs_result.Rhs_discovery.steps
       = full.Pipeline.rhs_result.Rhs_discovery.steps);
  Alcotest.(check string) "same EER schema"
    (Er.Text_render.to_string full.Pipeline.translate_result.Translate.eer)
    (Er.Text_render.to_string resumed.Pipeline.translate_result.Translate.eer);
  Alcotest.(check bool) "same normal forms" true
    (Pipeline.nf_report full = Pipeline.nf_report resumed);
  rm_rf dir

(* --- checkpoint content checksum --- *)

let test_checksum_tamper () =
  let dir = fresh_dir "_supervise_checksum" in
  let baseline =
    let g = generate () in
    Pipeline.run ~checkpoint_dir:dir g.Workload.Gen_schema.db
      (Job_spec.Equijoins g.Workload.Gen_schema.equijoins)
  in
  Alcotest.(check bool) "baseline elicited FDs" true
    (baseline.Pipeline.rhs_result.Rhs_discovery.fds <> []);
  Alcotest.(check bool) "intact artifact loads" true
    (Checkpoint.load_rhs ~dir <> None);
  (* drop one elicited FD from the payload but keep the stored checksum:
     the file still parses, so only the content checksum can reject it *)
  let p = Checkpoint.path ~dir Checkpoint.Rhs in
  let doc = In_channel.with_open_bin p In_channel.input_all in
  let mangled =
    match Sexp.of_string doc with
    | Sexp.List
        [ hdr; ver; stage; sum; Sexp.List (Sexp.Atom "rhs" :: fields) ] ->
        let fields =
          List.map
            (function
              | Sexp.List (Sexp.Atom "fds" :: _ :: rest) ->
                  Sexp.List (Sexp.Atom "fds" :: rest)
              | f -> f)
            fields
        in
        Sexp.List [ hdr; ver; stage; sum; Sexp.List (Sexp.Atom "rhs" :: fields) ]
    | _ -> Alcotest.fail "unexpected checkpoint layout"
  in
  Out_channel.with_open_bin p (fun oc ->
      Out_channel.output_string oc (Sexp.to_string mangled));
  Alcotest.(check bool) "tampered payload rejected by checksum" true
    (Checkpoint.load_rhs ~dir = None);
  (* resume silently recomputes the stage and matches the baseline *)
  let resumed =
    let g = generate () in
    Pipeline.run ~resume_from:dir g.Workload.Gen_schema.db
      (Job_spec.Equijoins g.Workload.Gen_schema.equijoins)
  in
  Alcotest.(check bool) "recomputed FDs match" true
    (baseline.Pipeline.rhs_result.Rhs_discovery.fds
    = resumed.Pipeline.rhs_result.Rhs_discovery.fds);
  Alcotest.(check string) "same EER schema"
    (Er.Text_render.to_string
       baseline.Pipeline.translate_result.Translate.eer)
    (Er.Text_render.to_string resumed.Pipeline.translate_result.Translate.eer);
  rm_rf dir

let suite =
  [
    Alcotest.test_case "token: fuel" `Quick test_token_fuel;
    Alcotest.test_case "token: deadline and heap" `Quick test_token_limits;
    Alcotest.test_case "token: unlimited vs cancellable" `Quick
      test_token_unlimited;
    Alcotest.test_case "pool: wedged job times out, retried on replacement"
      `Quick test_pool_wedged_job;
    Alcotest.test_case "pool: crashing tasks are retried then reported" `Quick
      test_pool_crash_retry;
    Alcotest.test_case "pool: tripped batch drains as Interrupted" `Quick
      test_pool_interrupted;
    Alcotest.test_case "ingest: tripped token is a typed error" `Quick
      test_csv_budget;
    Alcotest.test_case "cancellation prefix at 1/2/4 domains" `Quick
      test_cancellation_prefix;
    Alcotest.test_case "partial run annotated in report and lint" `Quick
      test_partial_annotated;
    Alcotest.test_case "`Fail policy raises Resource_exhausted" `Quick
      test_fail_policy;
    Alcotest.test_case "budget-partial resume reproduces the full run" `Quick
      test_partial_resume_identity;
    Alcotest.test_case "tampered checkpoint rejected by checksum" `Quick
      test_checksum_tamper;
  ]
