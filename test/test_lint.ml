(* Dbre_lint: golden diagnostics over a corrupted hospital fixture, and
   span well-formedness properties over corrupted corpus sources. *)

open Relational
open Sqlx
open Dbre_lint

(* ------------------------------------------------------------------ *)
(* The corrupted hospital fixture                                       *)
(* ------------------------------------------------------------------ *)

(* One list element per source line, so the expected line numbers below
   are the positions in these lists. Seeded defects are marked. *)

let ddl_fixture =
  String.concat "\n"
    [
      "CREATE TABLE Patient (";
      "  hosp_code VARCHAR(4),"; (* 2: L002 nullable UNIQUE member *)
      "  pat_no INT NOT NULL,";
      "  name VARCHAR(40),";
      "  name VARCHAR(40),"; (* 5: L003 duplicate attribute *)
      "  born INT,";
      "  UNIQUE (hosp_code, pat_no)";
      ");";
      "CREATE TABLE Admission ("; (* 9: L005 FK below targets Ward *)
      "  hosp_code VARCHAR(4) NOT NULL,";
      "  pat_no INT NOT NULL,";
      "  adm_date DATE NOT NULL,";
      "  ward VARCHAR(2),";
      "  bed INT,";
      "  drug1 VARCHAR(4),"; (* 15: L004 repeated group drug1/drug2 *)
      "  drug2 VARCHAR(4),";
      "  UNIQUE (hosp_code, pat_no, adm_date),";
      "  FOREIGN KEY (hosp_code, pat_no) REFERENCES Patient (hosp_code, \
       pat_no),";
      "  FOREIGN KEY (ward) REFERENCES Ward (ward_code)";
      ");";
      "CREATE TABLE Log (entry VARCHAR(80), stamp DATE);"; (* 21: L001 *)
    ]

let program_fixture =
  String.concat "\n"
    [
      "       PROCEDURE DIVISION.";
      "           EXEC SQL";
      "             SELECT name, ward";
      "             FROM Patient p, Admision a"; (* 4: L101 typo *)
      "             WHERE a.hosp_code = p.hosp_code";
      "           END-EXEC.";
      "           EXEC SQL";
      "             SELECT ghost FROM Patient"; (* 8: L102 *)
      "           END-EXEC.";
      "           EXEC SQL";
      (* 11: L106 cartesian + L107 no equi-join *)
      "             SELECT name FROM Patient p, Formulary f WHERE p.born = \
       1950";
      "           END-EXEC.";
      "           EXEC SQL";
      "             SELECT p.name FROM Patient p, Admission a";
      (* 15: L105 String = Int join *)
      "             WHERE p.hosp_code = a.hosp_code AND p.name = a.bed";
      "           END-EXEC.";
      "           EXEC SQL";
      (* 18: L104 duplicate alias *)
      "             SELECT a.ward FROM Admission a, Admission a";
      "           END-EXEC.";
      "           EXEC SQL";
      "             SELECT FROM WHERE"; (* 21: L108 unparseable *)
      "           END-EXEC.";
    ]

let hospital_schema () =
  Database.schema (Workload.Scenarios.hospital.Workload.Scenarios.database ())

let fixture_report () =
  Lint.run ~schema:(hospital_schema ())
    [
      Lint.source ~name:"hospital.sql" Lint.Schema_script ddl_fixture;
      Lint.source ~name:"admit.cob" Lint.Program program_fixture;
    ]

(* (source, code, severity, start line, start col) of every expected
   diagnostic, in report order *)
let expected_golden =
  [
    ("admit.cob", "L101", Diagnostic.Error, 4, 30);
    ("admit.cob", "L102", Diagnostic.Error, 8, 21);
    ("admit.cob", "L106", Diagnostic.Warning, 11, 31);
    ("admit.cob", "L107", Diagnostic.Info, 11, 31);
    ("admit.cob", "L105", Diagnostic.Warning, 15, 50);
    ("admit.cob", "L104", Diagnostic.Warning, 18, 46);
    ("admit.cob", "L108", Diagnostic.Warning, 21, 14);
    ("hospital.sql", "L002", Diagnostic.Warning, 2, 3);
    ("hospital.sql", "L003", Diagnostic.Error, 5, 3);
    ("hospital.sql", "L005", Diagnostic.Error, 9, 14);
    ("hospital.sql", "L004", Diagnostic.Info, 15, 3);
    ("hospital.sql", "L001", Diagnostic.Warning, 21, 14);
  ]

let golden_t =
  Alcotest.(list (pair (pair (pair string string) string) (pair int int)))

let shape (src, code, sev, line, col) =
  (((src, code), Diagnostic.severity_to_string sev), (line, col))

let test_golden () =
  let report = fixture_report () in
  let actual =
    List.map
      (fun (d : Diagnostic.t) ->
        ( Option.value ~default:"?" d.Diagnostic.source_name,
          d.Diagnostic.code,
          d.Diagnostic.severity,
          d.Diagnostic.span.Span.s_line,
          d.Diagnostic.span.Span.s_col ))
      report.Lint.diags
  in
  Alcotest.check golden_t "every seeded defect, code and position"
    (List.map shape expected_golden)
    (List.map shape actual)

(* the span offsets really underline the defective token *)
let test_golden_offsets () =
  let report = fixture_report () in
  let spanned code =
    let d =
      List.find (fun (d : Diagnostic.t) -> d.Diagnostic.code = code)
      report.Lint.diags
    in
    let src =
      if d.Diagnostic.source_name = Some "admit.cob" then program_fixture
      else ddl_fixture
    in
    let sp = d.Diagnostic.span in
    String.sub src sp.Span.s_off (sp.Span.e_off - sp.Span.s_off)
  in
  Alcotest.(check string) "L101 underlines the typo" "Admision"
    (spanned "L101");
  Alcotest.(check string) "L102 underlines the ghost column" "ghost"
    (spanned "L102");
  Alcotest.(check string) "L104 underlines the rebound table reference"
    "Admission" (spanned "L104");
  Alcotest.(check string) "L003 underlines the second occurrence" "name"
    (spanned "L003");
  Alcotest.(check string) "L004 underlines the first group member" "drug1"
    (spanned "L004");
  Alcotest.(check string) "L005 underlines the declaring table" "Admission"
    (spanned "L005")

(* human rendering: header format and caret excerpt *)
let test_excerpt () =
  let report = fixture_report () in
  let d =
    List.find
      (fun (d : Diagnostic.t) -> d.Diagnostic.code = "L101")
      report.Lint.diags
  in
  (match Diagnostic.render ~source:program_fixture d with
  | [ header; excerpt; caret ] ->
      Alcotest.(check bool) "header position" true
        (String.length header > 0
        && String.sub header 0 (String.length "admit.cob:4:30: error[L101]:")
           = "admit.cob:4:30: error[L101]:");
      let contains sub s =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "excerpt shows the source line" true
        (contains "FROM Patient p, Admision a" excerpt);
      Alcotest.(check bool) "caret underlines all 8 characters" true
        (contains "^^^^^^^^" caret)
  | lines ->
      Alcotest.failf "expected header + excerpt + caret, got %d line(s)"
        (List.length lines));
  (* the rendered report ends with the severity tally *)
  let text = Lint.render_text report in
  Alcotest.(check bool) "summary line" true
    (let suffix = "4 error(s), 6 warning(s), 2 info(s)\n" in
     String.length text >= String.length suffix
     && String.sub text
          (String.length text - String.length suffix)
          (String.length suffix)
        = suffix)

(* the clean corpus stays clean: all three scenarios, schema rules plus
   workload rules plus pipeline verification, produce no diagnostics *)
let test_clean_corpus () =
  List.iter
    (fun (s : Workload.Scenarios.t) ->
      let db = s.Workload.Scenarios.database () in
      let schema = Database.schema db in
      let sources =
        List.mapi
          (fun i p ->
            Lint.source
              ~name:(Printf.sprintf "%s/prog%02d" s.Workload.Scenarios.name i)
              Lint.Program p)
          s.Workload.Scenarios.programs
      in
      let static = Lint.run ~schema sources in
      let schema_diags = Rules_schema.check_schema schema in
      Alcotest.(check int)
        (s.Workload.Scenarios.name ^ " static diagnostics")
        0
        (List.length static.Lint.diags + List.length schema_diags);
      let config =
        {
          Dbre.Pipeline.default_config with
          Dbre.Pipeline.oracle = s.Workload.Scenarios.oracle ();
        }
      in
      match
        Dbre.Pipeline.run_checked ~config db
          (Dbre.Job_spec.Programs s.Workload.Scenarios.programs)
      with
      | Error _ -> Alcotest.failf "%s pipeline failed" s.Workload.Scenarios.name
      | Ok result ->
          let verify = Lint.verify result in
          Alcotest.(check int)
            (s.Workload.Scenarios.name ^ " verification diagnostics")
            0
            (List.length verify.Lint.diags))
    Workload.Scenarios.all

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let prop name arb fn =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:100 ~name arb fn)

(* corpus text mangled at a random cut point: truncated, spliced with a
   junk character, or with a duplicated prefix *)
let arb_corrupted =
  let texts =
    Array.of_list
      (ddl_fixture :: program_fixture
      :: List.concat_map
           (fun (s : Workload.Scenarios.t) -> s.Workload.Scenarios.programs)
           Workload.Scenarios.all)
  in
  let gen =
    QCheck.Gen.(
      let* idx = int_range 0 (Array.length texts - 1) in
      let text = texts.(idx) in
      let* cut = int_range 0 (String.length text) in
      let* mode = int_range 0 2 in
      let left = String.sub text 0 cut
      and right = String.sub text cut (String.length text - cut) in
      return
        (match mode with
        | 0 -> left
        | 1 -> left ^ "?" ^ right
        | _ -> left ^ text))
  in
  QCheck.make ~print:(fun s -> s) gen

let run_all_kinds text =
  let schema = hospital_schema () in
  List.concat_map
    (fun kind ->
      (Lint.run ~schema [ Lint.source ~name:"src" kind text ]).Lint.diags)
    [ Lint.Schema_script; Lint.Program; Lint.Sql_script ]

let span_props =
  [
    prop "every diagnostic span lies inside its source text" arb_corrupted
      (fun text ->
        List.for_all
          (fun (d : Diagnostic.t) -> Span.inside d.Diagnostic.span text)
          (run_all_kinds text));
    prop "rendering never fails, excerpts stay within the source"
      arb_corrupted (fun text ->
        List.for_all
          (fun (d : Diagnostic.t) ->
            let lines = Diagnostic.render ~source:text d in
            ignore (Diagnostic.to_json d);
            lines <> [])
          (run_all_kinds text));
  ]

let suite =
  [
    Alcotest.test_case "golden codes and positions" `Quick test_golden;
    Alcotest.test_case "golden span offsets" `Quick test_golden_offsets;
    Alcotest.test_case "header and excerpt rendering" `Quick test_excerpt;
    Alcotest.test_case "clean corpus stays clean" `Slow test_clean_corpus;
  ]
  @ span_props
