(* Streaming columnar ingest: the chunk-fed scanner and the one-pass
   loader are pinned against the seed row-at-a-time loader
   (Csv.load_reference), which is kept verbatim as the equivalence
   oracle. Randomized docs are generated from a fixed-seed LCG so every
   run replays the same corpus. *)

open Relational
open Helpers

(* -- deterministic pseudo-random stream ------------------------------- *)

let lcg = ref 0

let rand m =
  lcg := ((!lcg * 1103515245) + 12345) land 0x3FFFFFFF;
  !lcg mod m

let reset_lcg () = lcg := 987654321

let rel3 =
  Relation.make "r"
    ~domains:[ ("a", Domain.Int); ("b", Domain.String); ("c", Domain.Float) ]
    [ "a"; "b"; "c"; "d" ]

let cellpool =
  [|
    "1"; "2"; "33"; "-7"; "x"; "hello"; ""; "3.5"; "true"; "2021-01-01";
    "a,b"; "q\"q"; "nl\nnl"; "bad"; "9999999999999999999";
  |]

let gen_cell () = cellpool.(rand (Array.length cellpool))

let gen_csv ~header () =
  let b = Buffer.create 256 in
  let cols =
    match rand 5 with
    | 0 -> [ "a"; "b"; "c"; "d" ]
    | 1 -> [ "d"; "c"; "b"; "a" ]
    | 2 -> [ "a"; "b"; "c" ] (* missing d *)
    | 3 -> [ "a"; "b"; "c"; "d"; "e" ] (* undeclared e *)
    | _ -> [ "b"; "a"; "d"; "c" ]
  in
  if header then begin
    Buffer.add_string b (String.concat "," cols);
    Buffer.add_string b (if rand 2 = 0 then "\n" else "\r\n")
  end;
  let nrows = rand 8 in
  for _ = 1 to nrows do
    let w =
      if rand 10 = 0 then List.length cols + 1 else List.length cols
    in
    let cells = List.init w (fun _ -> gen_cell ()) in
    let line = Csv.render [ cells ] in
    (* render appends '\n'; strip it so we can vary the ending *)
    Buffer.add_string b (String.sub line 0 (String.length line - 1));
    Buffer.add_string b (match rand 3 with 0 -> "\r\n" | _ -> "\n")
  done;
  if rand 8 = 0 then Buffer.add_string b "\"torn";
  Buffer.contents b

(* canonical rendering of a loader result: table contents plus the
   quarantine report, or the typed error *)
let show = function
  | Ok (t, rep) ->
      Printf.sprintf "OK rows=%s report=%s"
        (String.concat ";"
           (List.map
              (fun row ->
                String.concat "," (List.map Value.to_string row))
              (Table.to_lists t)))
        (match rep with
        | None -> "none"
        | Some rep -> Quarantine.to_string rep)
  | Error e -> "ERR " ^ Error.to_string e

(* -- scanner: chunk boundaries are invisible -------------------------- *)

let scan_whole text =
  Csv.fold ~f:(fun acc r -> r :: acc) ~init:[] text

let scan_chunked size text =
  let pos = ref 0 in
  let reader () =
    if !pos >= String.length text then None
    else begin
      let n = min size (String.length text - !pos) in
      let chunk = String.sub text !pos n in
      pos := !pos + n;
      Some chunk
    end
  in
  Csv.fold_reader ~f:(fun acc r -> r :: acc) ~init:[] reader

let show_scan (rows, errs) =
  String.concat ";"
    (List.rev_map
       (fun r ->
         Printf.sprintf "%d@%d:%s" r.Csv.index r.Csv.line
           (String.concat "," (Array.to_list r.Csv.fields)))
       rows)
  ^ "/"
  ^ String.concat ";"
      (List.map
         (fun e ->
           Printf.sprintf "%d@%d:%d:%s" e.Csv.se_row e.Csv.se_line
             e.Csv.se_col e.Csv.se_message)
         errs)

let test_scanner_chunking () =
  reset_lcg ();
  for _ = 1 to 300 do
    let text = gen_csv ~header:(rand 2 = 0) () in
    let whole = show_scan (scan_whole text) in
    List.iter
      (fun size ->
        Alcotest.(check string)
          (Printf.sprintf "chunk=%d of %S" size text)
          whole
          (show_scan (scan_chunked size text)))
      [ 1; 2; 3; 7; 64 ]
  done

(* -- loader: streaming = reference, sequential and parallel ----------- *)

let pool3 = lazy (Domain_pool.get 3)

let test_loader_equivalence () =
  reset_lcg ();
  for _ = 1 to 1500 do
    let header = rand 2 = 0 in
    let text = gen_csv ~header () in
    List.iter
      (fun mode ->
        let reference = show (Csv.load_reference ~header ~mode rel3 text) in
        Alcotest.(check string)
          (Printf.sprintf "sequential %S" text)
          reference
          (show (Csv.load ~header ~mode rel3 text)))
      [ `Strict; `Quarantine ]
  done

let test_parallel_equivalence () =
  reset_lcg ();
  let pool = Lazy.force pool3 in
  for _ = 1 to 400 do
    let header = rand 2 = 0 in
    let text = gen_csv ~header () in
    List.iter
      (fun mode ->
        let reference = show (Csv.load_reference ~header ~mode rel3 text) in
        Alcotest.(check string)
          (Printf.sprintf "parallel %S" text)
          reference
          (show
             (Csv.load ~header ~mode ~pool ~min_parallel_bytes:1 rel3 text)))
      [ `Strict; `Quarantine ]
  done

(* -- dictionaries: codes and first-occurrence order ------------------- *)

let check_store_eq msg t1 t2 =
  let s1 = Column_store.of_table t1 and s2 = Column_store.of_table t2 in
  List.iter
    (fun a ->
      let c1 = Column_store.column s1 a and c2 = Column_store.column s2 a in
      Alcotest.(check bool)
        (Printf.sprintf "%s: dict of %s" msg a)
        true
        (Column_store.column_dict c1 = Column_store.column_dict c2);
      Alcotest.(check bool)
        (Printf.sprintf "%s: codes of %s" msg a)
        true
        (Column_store.column_codes c1 = Column_store.column_codes c2))
    (Table.schema t1).Relation.attrs

let test_dictionary_equivalence () =
  reset_lcg ();
  for _ = 1 to 200 do
    let text = gen_csv ~header:true () in
    match
      ( Csv.load ~mode:`Quarantine rel3 text,
        Csv.load_reference ~mode:`Quarantine rel3 text )
    with
    | Ok (t1, _), Ok (t2, _) -> check_store_eq "random doc" t1 t2
    | _ -> Alcotest.fail "quarantine load failed"
  done

(* -- memo bypass: >32768 distinct cells in one column ----------------- *)

let bypass_rel =
  Relation.make "wide"
    ~domains:[ ("id", Domain.Int); ("tag", Domain.String) ]
    [ "id"; "tag" ]

let bypass_csv ~dirty rows =
  let b = Buffer.create (rows * 12) in
  Buffer.add_string b "id,tag\r\n";
  for i = 0 to rows - 1 do
    (* all-distinct ids force the adaptive memo to drop at 32768; the
       dirty variant plants type errors on both sides of the drop *)
    if dirty && i mod 977 = 0 then Buffer.add_string b "oops"
    else Buffer.add_string b (string_of_int i);
    Buffer.add_string b (if i mod 3 = 0 then ",x\r\n" else ",y\r\n")
  done;
  Buffer.contents b

let test_memo_bypass () =
  let rows = 40_000 in
  let dirty = bypass_csv ~dirty:true rows in
  let pool = Lazy.force pool3 in
  List.iter
    (fun mode ->
      let reference = show (Csv.load_reference ~mode bypass_rel dirty) in
      Alcotest.(check string)
        "dirty, sequential" reference
        (show (Csv.load ~mode bypass_rel dirty));
      Alcotest.(check string)
        "dirty, parallel" reference
        (show (Csv.load ~mode ~pool ~min_parallel_bytes:1 bypass_rel dirty)))
    [ `Strict; `Quarantine ];
  let clean = bypass_csv ~dirty:false rows in
  match (Csv.load bypass_rel clean, Csv.load_reference bypass_rel clean) with
  | Ok (t1, _), Ok (t2, _) -> check_store_eq "bypass doc" t1 t2
  | _ -> Alcotest.fail "clean bypass load failed"

(* -- laziness --------------------------------------------------------- *)

let test_lazy_rows () =
  let csv = "id,tag\r\n1,x\r\n2,y\r\n3,x\r\n" in
  match Csv.load bypass_rel csv with
  | Ok (t, _) ->
      Alcotest.(check bool)
        "rows deferred after load" false (Table.materialized t);
      Alcotest.(check int)
        "cardinality without materializing" 3 (Table.cardinality t);
      Alcotest.(check bool)
        "still deferred after cardinality" false (Table.materialized t);
      let rows = Table.rows t in
      Alcotest.(check int) "materialized count" 3 (Array.length rows);
      Alcotest.(check bool)
        "materialized after rows" true (Table.materialized t);
      Alcotest.(check (list (list value)))
        "contents"
        [
          [ vi 1; vs "x" ]; [ vi 2; vs "y" ]; [ vi 3; vs "x" ];
        ]
        (Table.to_lists t)
  | Error e -> Alcotest.failf "load failed: %s" (Error.to_string e)

(* -- golden edge cases ------------------------------------------------ *)

let test_golden_edges () =
  (* quoting: embedded comma, doubled quote, quoted newline, CRLF *)
  (match
     Csv.load bypass_rel "id,tag\r\n1,\"a,b\"\r\n2,\"say \"\"hi\"\"\"\n3,\"l1\nl2\"\r\n"
   with
  | Ok (t, None) ->
      Alcotest.(check (list (list value)))
        "quoted fields"
        [
          [ vi 1; vs "a,b" ];
          [ vi 2; vs "say \"hi\"" ];
          [ vi 3; vs "l1\nl2" ];
        ]
        (Table.to_lists t)
  | _ -> Alcotest.fail "quoting doc should load cleanly");
  (* header reorder *)
  (match Csv.load bypass_rel "tag,id\r\nhello,7\n" with
  | Ok (t, None) ->
      Alcotest.(check (list (list value)))
        "reordered header" [ [ vi 7; vs "hello" ] ] (Table.to_lists t)
  | _ -> Alcotest.fail "reordered doc should load cleanly");
  (* strict arity error carries row, line and widths *)
  (match Csv.load bypass_rel "id,tag\n1,x\n2\n" with
  | Error e ->
      Alcotest.(check string)
        "arity code" "csv-arity"
        (Error.code_to_string e.Error.code);
      check_contains "arity message" ~sub:"width 1, expected 2"
        e.Error.message
  | Ok _ -> Alcotest.fail "short row must fail in strict mode");
  (* strict type error names the cell and the domain *)
  (match Csv.load bypass_rel "id,tag\nzz,x\n" with
  | Error e ->
      Alcotest.(check string)
        "type code" "type-mismatch"
        (Error.code_to_string e.Error.code);
      check_contains "type message" ~sub:"\"zz\" is not a" e.Error.message
  | Ok _ -> Alcotest.fail "bad int must fail in strict mode");
  (* degenerate documents agree with the reference loader *)
  List.iter
    (fun text ->
      List.iter
        (fun mode ->
          Alcotest.(check string)
            (Printf.sprintf "degenerate %S" text)
            (show (Csv.load_reference ~mode bypass_rel text))
            (show (Csv.load ~mode bypass_rel text)))
        [ `Strict; `Quarantine ])
    [ ""; "id,tag\n"; "id,tag"; "\"torn"; "id,tag\n1,x\n\"torn" ]

(* -- load_file -------------------------------------------------------- *)

let test_load_file () =
  let t = table "wide" [ "id"; "tag" ] [ [ vi 1; vs "x" ]; [ vi 2; vs "y" ] ] in
  let csv = Csv.dump_table t in
  let path = Filename.temp_file "dbre_ingest" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc csv;
      close_out oc;
      match Csv.load_file bypass_rel path with
      | Ok (got, None) ->
          Alcotest.(check string)
            "file roundtrip"
            (show (Csv.load bypass_rel csv))
            (show (Ok (got, None)))
      | Ok (_, Some _) -> Alcotest.fail "clean file produced a report"
      | Error e -> Alcotest.failf "load_file failed: %s" (Error.to_string e));
  match Csv.load_file bypass_rel (path ^ ".does-not-exist") with
  | Error e ->
      Alcotest.(check string)
        "missing file code" "io-error"
        (Error.code_to_string e.Error.code)
  | Ok _ -> Alcotest.fail "missing file must be an Io_error"

let suite =
  [
    Alcotest.test_case "chunked scan = whole scan" `Quick
      test_scanner_chunking;
    Alcotest.test_case "streaming = reference (randomized)" `Quick
      test_loader_equivalence;
    Alcotest.test_case "parallel = reference (randomized)" `Quick
      test_parallel_equivalence;
    Alcotest.test_case "dictionaries match the reference encode" `Quick
      test_dictionary_equivalence;
    Alcotest.test_case "memo bypass at high cardinality" `Quick
      test_memo_bypass;
    Alcotest.test_case "rows materialize lazily" `Quick test_lazy_rows;
    Alcotest.test_case "golden edge cases" `Quick test_golden_edges;
    Alcotest.test_case "load_file roundtrip and Io_error" `Quick
      test_load_file;
  ]
