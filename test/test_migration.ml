open Relational
open Helpers
open Sqlx

(* ---------- statement execution primitives ---------- *)

let small_db () =
  database
    [
      ( Relation.make ~uniques:[ [ "id" ] ] "T" [ "id"; "v"; "w" ],
        [ [ vi 1; vs "a"; vi 10 ]; [ vi 2; vs "b"; vi 20 ]; [ vi 3; vs "a"; vi 30 ] ]
      );
    ]

let test_exec_create_insert () =
  let db = small_db () in
  Exec.exec_script db
    "CREATE TABLE U (k INT, l VARCHAR(8)); INSERT INTO U VALUES (1, 'x');\n\
     INSERT INTO U (k) VALUES (2);";
  Alcotest.(check int) "rows" 2 (Database.cardinality db "U");
  Alcotest.(check value) "missing column null" vnull
    (Table.rows (Database.table db "U")).(1).(1)

let test_exec_insert_select () =
  let db = small_db () in
  Exec.exec_script db
    "CREATE TABLE V (v VARCHAR(8));\n\
     INSERT INTO V (v) SELECT DISTINCT v FROM T WHERE v IS NOT NULL;";
  Alcotest.(check int) "distinct values copied" 2 (Database.cardinality db "V")

let test_exec_insert_select_width_mismatch () =
  let db = small_db () in
  try
    Exec.exec_script db
      "CREATE TABLE V (v VARCHAR(8)); INSERT INTO V (v) SELECT v, w FROM T;";
    Alcotest.fail "expected width error"
  with Exec.Error _ -> ()

let test_exec_update () =
  let db = small_db () in
  Exec.exec_script db "UPDATE T SET v = 'z' WHERE w > 15;";
  let changed =
    Table.select (Database.table db "T") (fun tup -> Value.equal tup.(1) (vs "z"))
  in
  Alcotest.(check int) "two rows updated" 2 (List.length changed);
  Exec.exec_script db "UPDATE T SET w = 0;";
  Alcotest.(check int) "unconditional update" 1
    (Table.count_distinct (Database.table db "T") [ "w" ])

let test_exec_delete () =
  let db = small_db () in
  Exec.exec_script db "DELETE FROM T WHERE v = 'a';";
  Alcotest.(check int) "one row left" 1 (Database.cardinality db "T");
  Exec.exec_script db "DELETE FROM T;";
  Alcotest.(check int) "all gone" 0 (Database.cardinality db "T")

let test_exec_drop_column () =
  let db = small_db () in
  Exec.exec_script db "ALTER TABLE T DROP COLUMN v;";
  let rel = Table.schema (Database.table db "T") in
  Alcotest.(check (list string)) "column gone" [ "id"; "w" ] rel.Relation.attrs;
  Alcotest.(check int) "rows kept" 3 (Database.cardinality db "T");
  (try
     Exec.exec_script db "ALTER TABLE T DROP COLUMN ghost;";
     Alcotest.fail "expected unknown-column error"
   with Exec.Error _ -> ())

let test_exec_add_fk () =
  let db =
    database
      [
        ( Relation.make ~uniques:[ [ "id" ] ] "P" [ "id" ],
          [ [ vi 1 ]; [ vi 2 ] ] );
        (Relation.make "C" [ "ref" ], [ [ vi 1 ]; [ vnull ] ]);
        (Relation.make "Bad" [ "ref" ], [ [ vi 9 ] ]);
      ]
  in
  (* satisfied (nulls exempt, FK semantics) *)
  Exec.exec_script db "ALTER TABLE C ADD FOREIGN KEY (ref) REFERENCES P (id);";
  (* referenced columns default to the key *)
  Exec.exec_script db "ALTER TABLE C ADD FOREIGN KEY (ref) REFERENCES P;";
  try
    Exec.exec_script db "ALTER TABLE Bad ADD FOREIGN KEY (ref) REFERENCES P (id);";
    Alcotest.fail "expected FK violation"
  with Exec.Error _ -> ()

let test_alter_parse_print_roundtrip () =
  List.iter
    (fun sql ->
      let stmt = Parser.parse_statement sql in
      Alcotest.(check string) ("roundtrip " ^ sql) sql
        (Pretty.statement_to_string stmt))
    [
      "ALTER TABLE T DROP COLUMN v";
      "ALTER TABLE T ADD FOREIGN KEY (a, b) REFERENCES S (x, y)";
      "INSERT INTO T (a) SELECT DISTINCT b FROM S WHERE b IS NOT NULL";
    ]

(* ---------- migration round-trips ---------- *)

let databases_extensionally_equal expected actual =
  List.for_all
    (fun rel ->
      let name = rel.Relation.name in
      match Database.table_opt actual name with
      | None -> false
      | Some t ->
          let sort tbl = List.sort compare (Table.to_lists tbl) in
          (Table.schema t).Relation.attrs = rel.Relation.attrs
          && sort t = sort (Database.table expected name))
    (Schema.relations (Database.schema expected))

let roundtrip scenario_db oracle input fresh_db =
  let db = scenario_db in
  let original = Database.schema db in
  let result =
    Dbre.Pipeline.run
      ~config:{ Dbre.Pipeline.default_config with Dbre.Pipeline.oracle }
      db input
  in
  let sql = Dbre.Migration.script ~original result in
  let fresh = fresh_db in
  Exec.exec_script fresh sql;
  let expected =
    Option.get result.Dbre.Pipeline.restruct_result.Dbre.Restruct.database
  in
  (sql, expected, fresh)

let test_paper_roundtrip () =
  let sql, expected, fresh =
    roundtrip
      (Workload.Paper_example.database ())
      (Workload.Paper_example.oracle ())
      (Dbre.Job_spec.Equijoins (Workload.Paper_example.equijoins ()))
      (Workload.Paper_example.database ())
  in
  Alcotest.(check bool) "script nonempty" true (String.length sql > 500);
  Alcotest.(check bool) "extensionally equal" true
    (databases_extensionally_equal expected fresh);
  (* every statement of the script parses back *)
  Alcotest.(check bool) "script reparses" true
    (List.length (Parser.parse_script sql) > 10)

let test_payroll_roundtrip () =
  let s = Workload.Scenarios.payroll in
  let _, expected, fresh =
    roundtrip
      (s.Workload.Scenarios.database ())
      (s.Workload.Scenarios.oracle ())
      (Dbre.Job_spec.Programs s.Workload.Scenarios.programs)
      (s.Workload.Scenarios.database ())
  in
  Alcotest.(check bool) "extensionally equal" true
    (databases_extensionally_equal expected fresh)

let test_synthetic_roundtrip () =
  let g () = Workload.Gen_schema.generate Workload.Gen_schema.default_spec in
  let w = g () in
  let _, expected, fresh =
    roundtrip w.Workload.Gen_schema.db Dbre.Oracle.automatic
      (Dbre.Job_spec.Equijoins w.Workload.Gen_schema.equijoins)
      (g ()).Workload.Gen_schema.db
  in
  Alcotest.(check bool) "extensionally equal" true
    (databases_extensionally_equal expected fresh)

let test_migration_fks_validate () =
  (* applying the script must not raise: every generated FK holds *)
  let db = Workload.Paper_example.database () in
  let original = Database.schema db in
  let result =
    Dbre.Pipeline.run
      ~config:
        {
          Dbre.Pipeline.default_config with
          Dbre.Pipeline.oracle = Workload.Paper_example.oracle ();
        }
      db
      (Dbre.Job_spec.Equijoins (Workload.Paper_example.equijoins ()))
  in
  let sql = Dbre.Migration.script ~original result in
  let fresh = Workload.Paper_example.database () in
  (* would raise Exec.Error on any violated ALTER ... ADD FOREIGN KEY *)
  Exec.exec_script fresh sql;
  Alcotest.(check int) "ten FK statements" 10
    (List.length
       (List.filter
          (function Ast.Alter (_, Ast.Add_foreign_key _) -> true | _ -> false)
          (Parser.parse_script sql)))

let suite =
  [
    Alcotest.test_case "exec create/insert" `Quick test_exec_create_insert;
    Alcotest.test_case "exec insert-select" `Quick test_exec_insert_select;
    Alcotest.test_case "exec insert-select width" `Quick test_exec_insert_select_width_mismatch;
    Alcotest.test_case "exec update" `Quick test_exec_update;
    Alcotest.test_case "exec delete" `Quick test_exec_delete;
    Alcotest.test_case "exec drop column" `Quick test_exec_drop_column;
    Alcotest.test_case "exec add foreign key" `Quick test_exec_add_fk;
    Alcotest.test_case "alter parse/print" `Quick test_alter_parse_print_roundtrip;
    Alcotest.test_case "paper migration roundtrip" `Quick test_paper_roundtrip;
    Alcotest.test_case "payroll migration roundtrip" `Quick test_payroll_roundtrip;
    Alcotest.test_case "synthetic migration roundtrip" `Quick test_synthetic_roundtrip;
    Alcotest.test_case "migration FKs validate" `Quick test_migration_fks_validate;
  ]
