(* Property-based pipeline invariants over random synthetic workloads:
   whatever the generated shape, the method's outputs must satisfy the
   §7 guarantees. *)

open Relational
open Deps

let gen_spec =
  QCheck.Gen.(
    let* n_entities = int_range 1 3 in
    let* n_denorm = int_range 1 2 in
    let* refs = int_range 1 3 in
    let* payload = int_range 1 2 in
    let* rows = int_range 30 150 in
    let* null_pct = int_range 0 2 in
    let* seed = int_range 0 10_000 in
    return
      {
        Workload.Gen_schema.n_entities;
        rows_per_entity = rows;
        n_denorm;
        refs_per_denorm = refs;
        payload_per_ref = payload;
        rows_per_denorm = rows * 2;
        null_ref_rate = float_of_int null_pct /. 10.0;
        flow_navigation = false;
        seed = Int64.of_int seed;
      })

let print_spec (s : Workload.Gen_schema.spec) =
  Printf.sprintf "entities=%d denorm=%d refs=%d payload=%d rows=%d null=%.1f seed=%Ld"
    s.Workload.Gen_schema.n_entities s.Workload.Gen_schema.n_denorm
    s.Workload.Gen_schema.refs_per_denorm s.Workload.Gen_schema.payload_per_ref
    s.Workload.Gen_schema.rows_per_entity s.Workload.Gen_schema.null_ref_rate
    s.Workload.Gen_schema.seed

let arb_spec = QCheck.make ~print:print_spec gen_spec

let run_pipeline spec =
  let g = Workload.Gen_schema.generate spec in
  let r =
    Dbre.Pipeline.run g.Workload.Gen_schema.db
      (Dbre.Job_spec.Equijoins g.Workload.Gen_schema.equijoins)
  in
  (g, r)

let count = 25

let prop name f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb_spec f)

let at_least_3nf nf =
  match nf with
  | Normal_forms.Nf3 | Normal_forms.Bcnf -> true
  | Normal_forms.Nf1 | Normal_forms.Nf2 -> false

let suite =
  [
    prop "restructured schema is 3NF" (fun spec ->
        let _, r = run_pipeline spec in
        List.for_all (fun (_, nf) -> at_least_3nf nf) (Dbre.Pipeline.nf_report r));
    prop "all RICs hold on the migrated data" (fun spec ->
        let _, r = run_pipeline spec in
        match r.Dbre.Pipeline.restruct_result.Dbre.Restruct.database with
        | Some db ->
            List.for_all (Ind.satisfied db)
              r.Dbre.Pipeline.restruct_result.Dbre.Restruct.ric
        | None -> false);
    prop "attributes are preserved" (fun spec ->
        let g, r = run_pipeline spec in
        (* every attribute of the input schema appears somewhere in the
           restructured schema *)
        let final = r.Dbre.Pipeline.restruct_result.Dbre.Restruct.schema in
        let covered a =
          List.exists
            (fun rel -> Relation.has_attr rel a)
            (Schema.relations final)
        in
        List.for_all
          (fun rel -> List.for_all covered rel.Relation.attrs)
          (Schema.relations (Database.schema g.Workload.Gen_schema.db)));
    prop "migrated dictionary constraints hold" (fun spec ->
        let _, r = run_pipeline spec in
        match r.Dbre.Pipeline.restruct_result.Dbre.Restruct.database with
        | Some db -> Result.is_ok (Database.check_constraints db)
        | None -> false);
    prop "planted dependencies recovered on clean data" (fun spec ->
        let g, r = run_pipeline spec in
        let im =
          Workload.Evaluate.ind_metrics
            ~truth:g.Workload.Gen_schema.truth.Workload.Gen_schema.planted_inds
            r.Dbre.Pipeline.ind_result.Dbre.Ind_discovery.inds
        in
        im.Workload.Evaluate.recall = 1.0);
    prop "EER validates" (fun spec ->
        let _, r = run_pipeline spec in
        Result.is_ok
          (Er.Validate.check
             r.Dbre.Pipeline.translate_result.Dbre.Translate.eer));
    prop "pipeline is deterministic" (fun spec ->
        let _, r1 = run_pipeline spec in
        let _, r2 = run_pipeline spec in
        List.equal Ind.equal r1.Dbre.Pipeline.ind_result.Dbre.Ind_discovery.inds
          r2.Dbre.Pipeline.ind_result.Dbre.Ind_discovery.inds
        && List.equal Fd.equal r1.Dbre.Pipeline.rhs_result.Dbre.Rhs_discovery.fds
             r2.Dbre.Pipeline.rhs_result.Dbre.Rhs_discovery.fds);
    prop "IND order does not change the elicited set" (fun spec ->
        let g = Workload.Gen_schema.generate spec in
        let run joins =
          (Dbre.Pipeline.run g.Workload.Gen_schema.db
             (Dbre.Job_spec.Equijoins joins))
            .Dbre.Pipeline.ind_result.Dbre.Ind_discovery.inds
          |> List.sort Ind.compare
        in
        (* note: NEI conceptualization could be order-sensitive, but the
           automatic oracle never conceptualizes *)
        run g.Workload.Gen_schema.equijoins
        = run (List.rev g.Workload.Gen_schema.equijoins));
    prop "migration script replays exactly" (fun spec ->
        let g = Workload.Gen_schema.generate spec in
        let db = g.Workload.Gen_schema.db in
        let original = Database.schema db in
        let r =
          Dbre.Pipeline.run db
            (Dbre.Job_spec.Equijoins g.Workload.Gen_schema.equijoins)
        in
        let sql = Dbre.Migration.script ~original r in
        let fresh = (Workload.Gen_schema.generate spec).Workload.Gen_schema.db in
        Sqlx.Exec.exec_script fresh sql;
        let expected =
          Option.get r.Dbre.Pipeline.restruct_result.Dbre.Restruct.database
        in
        List.for_all
          (fun rel ->
            let name = rel.Relation.name in
            let sort t =
              List.sort compare (Table.to_lists (Database.table t name))
            in
            sort fresh = sort expected)
          (Schema.relations (Database.schema expected)));
  ]
