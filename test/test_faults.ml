(* Fault-injection properties: whatever fault class hits the inputs, the
   lenient pipeline returns [Ok]/[Error partial] with an accurate
   quarantine ledger — it never raises — and the strict loader refuses
   the same documents. *)

open Relational
open Dbre

let gen_spec =
  QCheck.Gen.(
    let* n_entities = int_range 1 3 in
    let* n_denorm = int_range 1 2 in
    let* refs = int_range 1 2 in
    let* rows = int_range 30 60 in
    let* seed = int_range 0 10_000 in
    return
      {
        Workload.Gen_schema.n_entities;
        rows_per_entity = rows;
        n_denorm;
        refs_per_denorm = refs;
        payload_per_ref = 1;
        rows_per_denorm = rows;
        null_ref_rate = 0.1;
        flow_navigation = false;
        seed = Int64.of_int seed;
      })

let print_spec (s : Workload.Gen_schema.spec) =
  Printf.sprintf "entities=%d denorm=%d refs=%d rows=%d seed=%Ld"
    s.Workload.Gen_schema.n_entities s.Workload.Gen_schema.n_denorm
    s.Workload.Gen_schema.refs_per_denorm s.Workload.Gen_schema.rows_per_entity
    s.Workload.Gen_schema.seed

let arb_spec = QCheck.make ~print:print_spec gen_spec
let count = 15

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let lenient_config =
  { Pipeline.default_config with migrate_data = false; on_bad_tuple = `Quarantine }

(* Dump every table of the generated database, inject [fault] into each
   document, and reload leniently into a fresh database. *)
let inject_all rng fault g =
  let db = g.Workload.Gen_schema.db in
  let schema = Database.schema db in
  let fresh = Database.create schema in
  let injected = ref 0 in
  let reports = ref [] in
  List.iter
    (fun rel ->
      let csv = Csv.dump_table (Database.table db rel.Relation.name) in
      let inj = Workload.Faults.inject_csv rng rel fault csv in
      injected := !injected + inj.Workload.Faults.injected;
      (match Csv.load ~mode:`Quarantine rel inj.Workload.Faults.csv with
      | Ok (t, report) ->
          Database.replace_table fresh t;
          Option.iter (fun r -> reports := r :: !reports) report
      | Error _ -> Alcotest.fail "quarantine load never fails"))
    (Schema.relations schema);
  (fresh, !injected, List.rev !reports)

let total_entries reports =
  List.fold_left (fun acc r -> acc + Quarantine.count r) 0 reports

(* Every fault class: the lenient pipeline completes and the quarantine
   ledger accounts for exactly the injected faults. *)
let fault_class_prop name mk_fault =
  prop name arb_spec (fun spec ->
      let g = Workload.Gen_schema.generate spec in
      let rng =
        Workload.Rng.create (Int64.add spec.Workload.Gen_schema.seed 77L)
      in
      let fault = mk_fault rng in
      let db, injected, reports = inject_all rng fault g in
      match
        Pipeline.run_checked ~config:lenient_config ~quarantine:reports db
          (Job_spec.Equijoins g.Workload.Gen_schema.equijoins)
      with
      | Ok r ->
          r.Pipeline.quarantine == reports
          && total_entries r.Pipeline.quarantine = injected
      | Error _ -> false)

let pick_fault rng =
  Workload.Rng.pick rng
    [
      Workload.Faults.Unterminated_quote;
      Workload.Faults.Extra_field (Workload.Rng.int_in rng 1 3);
      Workload.Faults.Type_mismatch (Workload.Rng.int_in rng 1 3);
      Workload.Faults.Drop_column;
    ]

(* The artifact options of a partial must form a prefix: no stage result
   present after an absent one. *)
let prefix_ok (p : Pipeline.partial) =
  let some o = Option.is_some o in
  let rec ok = function
    | a :: (b :: _ as rest) -> (a || not b) && ok rest
    | _ -> true
  in
  ok
    [
      some p.Pipeline.p_equijoins;
      some p.Pipeline.p_ind_result;
      some p.Pipeline.p_lhs_result;
      some p.Pipeline.p_rhs_result;
      some p.Pipeline.p_restruct_result;
    ]

(* Clean-run decision count for the payroll scenario: how many times the
   expert is consulted end to end. *)
let payroll_decisions =
  lazy
    (let s = Workload.Scenarios.payroll in
     let n = ref 0 in
     let o = s.Workload.Scenarios.oracle () in
     let counting =
       {
         o with
         Oracle.on_nei =
           (fun ctx ->
             incr n;
             o.Oracle.on_nei ctx);
         validate_fd =
           (fun fd ->
             incr n;
             o.Oracle.validate_fd fd);
         enforce_fd =
           (fun ~rel ~lhs ~attr ->
             incr n;
             o.Oracle.enforce_fd ~rel ~lhs ~attr);
         conceptualize_hidden =
           (fun a ->
             incr n;
             o.Oracle.conceptualize_hidden a);
       }
     in
     let config = { Pipeline.default_config with oracle = counting } in
     ignore
       (Pipeline.run ~config
          (s.Workload.Scenarios.database ())
          (Job_spec.Programs s.Workload.Scenarios.programs));
     !n)

let test_oracle_failure_first_decision () =
  (* hospital: the first expert decision is an NEI during IND-Discovery *)
  let s = Workload.Scenarios.hospital in
  let config =
    {
      Pipeline.default_config with
      Pipeline.oracle =
        Workload.Faults.failing_oracle ~every:1 (s.Workload.Scenarios.oracle ());
    }
  in
  match
    Pipeline.run_checked ~config
      (s.Workload.Scenarios.database ())
      (Job_spec.Programs s.Workload.Scenarios.programs)
  with
  | Ok _ -> Alcotest.fail "expected a partial result"
  | Error p ->
      Alcotest.(check string)
        "error code" "oracle-failure"
        (Error.code_to_string p.Pipeline.p_error.Error.code);
      Alcotest.(check bool) "failed during IND-Discovery" true
        (p.Pipeline.p_error.Error.stage = Some Error.Ind_discovery);
      Alcotest.(check bool) "Q survived" true
        (Option.is_some p.Pipeline.p_equijoins);
      Alcotest.(check bool) "no IND artifact" true
        (Option.is_none p.Pipeline.p_ind_result);
      Alcotest.(check bool) "prefix shape" true (prefix_ok p)

let test_failing_oracle_validation () =
  Alcotest.check_raises "every must be positive"
    (Invalid_argument "Faults.failing_oracle: every must be positive")
    (fun () ->
      ignore (Workload.Faults.failing_oracle ~every:0 Oracle.automatic))

let suite =
  [
    fault_class_prop "unterminated quote: quarantined, never raises"
      (fun _ -> Workload.Faults.Unterminated_quote);
    fault_class_prop "extra fields: quarantined, never raises" (fun rng ->
        Workload.Faults.Extra_field (Workload.Rng.int_in rng 1 3));
    fault_class_prop "type mismatches: quarantined, never raises" (fun rng ->
        Workload.Faults.Type_mismatch (Workload.Rng.int_in rng 1 3));
    fault_class_prop "dropped column: quarantined, never raises" (fun _ ->
        Workload.Faults.Drop_column);
    prop "strict loader refuses every faulted document" arb_spec (fun spec ->
        let g = Workload.Gen_schema.generate spec in
        let rng =
          Workload.Rng.create (Int64.add spec.Workload.Gen_schema.seed 13L)
        in
        let fault = pick_fault rng in
        List.for_all
          (fun rel ->
            let csv =
              Csv.dump_table
                (Database.table g.Workload.Gen_schema.db rel.Relation.name)
            in
            let inj = Workload.Faults.inject_csv rng rel fault csv in
            if inj.Workload.Faults.injected = 0 then true
            else
              match Csv.load rel inj.Workload.Faults.csv with
              | Ok _ -> false
              | Error _ -> true)
          (Schema.relations (Database.schema g.Workload.Gen_schema.db)));
    prop "oracle failure yields a structured partial"
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 6))
      (fun every ->
        let s = Workload.Scenarios.payroll in
        let config =
          {
            Pipeline.default_config with
            Pipeline.oracle =
              Workload.Faults.failing_oracle ~every
                (s.Workload.Scenarios.oracle ());
          }
        in
        match
          Pipeline.run_checked ~config
            (s.Workload.Scenarios.database ())
            (Job_spec.Programs s.Workload.Scenarios.programs)
        with
        | Ok _ -> every > Lazy.force payroll_decisions
        | Error p ->
            p.Pipeline.p_error.Error.code = Error.Oracle_failure
            && prefix_ok p);
    Alcotest.test_case "oracle dies on first decision" `Quick
      test_oracle_failure_first_decision;
    Alcotest.test_case "failing_oracle validates every" `Quick
      test_failing_oracle_validation;
  ]
