(* Sqlx.Dataflow: goldens on paper-style COBOL programs, the L109-L112
   lint rules, fuzzed recovery against the generator's ground truth, and
   span well-formedness of the recovered facts. *)

open Relational
open Sqlx

let schema () = Workload.Paper_example.schema ()

let join_t =
  Alcotest.testable
    (fun ppf j -> Fmt.string ppf (Equijoin.to_string j))
    Equijoin.equal

(* ------------------------------------------------------------------ *)
(* Goldens: the three navigation shapes the analysis must recover        *)
(* ------------------------------------------------------------------ *)

let select_into_program =
  String.concat "\n"
    [
      "       PROCEDURE DIVISION.";
      "           EXEC SQL";
      "             SELECT id INTO :w-emp FROM Person WHERE name = :w-name";
      "           END-EXEC.";
      "           EXEC SQL";
      "             SELECT dep FROM Department WHERE emp = :w-emp";
      "           END-EXEC.";
    ]

let test_select_into_chain () =
  let joins = Dataflow.joins_of_program (schema ()) select_into_program in
  Alcotest.check (Alcotest.list join_t) "Person-Department recovered"
    [ Equijoin.make ("Person", [ "id" ]) ("Department", [ "emp" ]) ]
    joins;
  let df =
    Dataflow.analyze (schema ())
      (Embedded.scan select_into_program).Embedded.statements
  in
  Alcotest.(check int) "one def" 1 (List.length df.Dataflow.defs);
  Alcotest.(check int) "one chain" 1 (List.length df.Dataflow.chains);
  match df.Dataflow.chains with
  | [ ch ] ->
      Alcotest.(check bool) "flow-sensitive" true
        (ch.Dataflow.c_flow = Dataflow.Sensitive);
      Alcotest.(check int) "def in statement 0" 0 ch.Dataflow.c_def.d_stmt;
      Alcotest.(check int) "use in statement 1" 1 ch.Dataflow.c_use.u_stmt
  | _ -> Alcotest.fail "expected exactly one chain"

let cursor_program =
  String.concat "\n"
    [
      "       PROCEDURE DIVISION.";
      "           EXEC SQL DECLARE DEPCUR CURSOR FOR";
      "             SELECT dep FROM Department WHERE location = :w-loc";
      "           END-EXEC.";
      "           EXEC SQL OPEN DEPCUR END-EXEC.";
      "           EXEC SQL FETCH DEPCUR INTO :w-dep END-EXEC.";
      "           EXEC SQL";
      "             SELECT proj FROM Assignment WHERE dep = :w-dep";
      "           END-EXEC.";
      "           EXEC SQL CLOSE DEPCUR END-EXEC.";
    ]

let test_cursor_chain () =
  let joins = Dataflow.joins_of_program (schema ()) cursor_program in
  Alcotest.check (Alcotest.list join_t) "cursor FETCH chains to the use"
    [ Equijoin.make ("Department", [ "dep" ]) ("Assignment", [ "dep" ]) ]
    joins;
  let df =
    Dataflow.analyze (schema ())
      (Embedded.scan cursor_program).Embedded.statements
  in
  match df.Dataflow.cursors with
  | [ c ] ->
      Alcotest.(check string) "name" "DEPCUR" c.Dataflow.cur_name;
      Alcotest.(check int) "opened once" 1 (List.length c.Dataflow.cur_opened);
      Alcotest.(check int) "fetched once" 1 c.Dataflow.cur_fetches;
      Alcotest.(check int) "closed once" 1 c.Dataflow.cur_closes
  | _ -> Alcotest.fail "expected one cursor"

let test_view_expansion () =
  let stmts =
    Parser.parse_script
      "CREATE VIEW Staffing AS SELECT emp, dep FROM Assignment;\n\
       SELECT name FROM Person, Staffing WHERE Person.id = Staffing.emp"
  in
  let joins = Dataflow.joins_of_statements (schema ()) stmts in
  Alcotest.check (Alcotest.list join_t)
    "equality through the view lands on the base relation"
    [ Equijoin.make ("Person", [ "id" ]) ("Assignment", [ "emp" ]) ]
    joins;
  (* the per-statement elicitation cannot resolve the view reference *)
  Alcotest.check (Alcotest.list join_t) "invisible to per-statement Q" []
    (Equijoin.dedupe
       (List.concat_map (Equijoin.of_statement (schema ())) stmts))

let test_kill_rule () =
  let stmts =
    Parser.parse_script
      "SELECT id INTO :w FROM Person WHERE name = :a;\n\
       SELECT dep FROM Department WHERE emp = :w;\n\
       SELECT no INTO :w FROM HEmployee WHERE salary = :b;\n\
       SELECT proj FROM Assignment WHERE emp = :w"
  in
  let joins = Dataflow.joins_of_statements (schema ()) stmts in
  Alcotest.check (Alcotest.list join_t)
    "each use pairs with its latest def only"
    [
      Equijoin.make ("Person", [ "id" ]) ("Department", [ "emp" ]);
      Equijoin.make ("HEmployee", [ "no" ]) ("Assignment", [ "emp" ]);
    ]
    joins

(* statements elicit nothing on their own: the whole program's evidence
   is inter-statement *)
let test_zero_single_statement_witnesses () =
  List.iter
    (fun program ->
      let stmts = (Embedded.scan program).Embedded.statements in
      Alcotest.check (Alcotest.list join_t) "no per-statement evidence" []
        (Equijoin.dedupe
           (List.concat_map (Equijoin.of_statement (schema ())) stmts)))
    [ select_into_program; cursor_program ]

(* ------------------------------------------------------------------ *)
(* Lint rules L109 - L112                                               *)
(* ------------------------------------------------------------------ *)

let codes diags =
  List.map (fun (d : Dbre_lint.Diagnostic.t) -> d.Dbre_lint.Diagnostic.code) diags

let check_program text =
  Dbre_lint.Rules_workload.check_program (schema ()) text

let test_l109_use_before_def () =
  let program =
    "EXEC SQL SELECT dep FROM Department WHERE emp = :w END-EXEC.\n\
     EXEC SQL SELECT id INTO :w FROM Person WHERE name = :a END-EXEC."
  in
  Alcotest.(check (list string)) "use-before-def flagged"
    [ "L109" ] (codes (check_program program))

let test_l110_dead_write () =
  let program =
    "EXEC SQL SELECT id INTO :w FROM Person WHERE name = :a END-EXEC.\n\
     EXEC SQL SELECT dep FROM Department WHERE emp = :x END-EXEC.\n\
     EXEC SQL SELECT salary INTO :x FROM HEmployee WHERE no = :n END-EXEC.\n\
     EXEC SQL SELECT proj FROM Assignment WHERE emp = :x END-EXEC."
  in
  (* :w is written and never read -> L110; :x is read before its write
     -> L109, and that same write feeds the later use, so it is live *)
  Alcotest.(check (list string)) "dead write and use-before-def"
    [ "L109"; "L110" ]
    (List.sort compare (codes (check_program program)))

let test_l111_incompatible_domains () =
  let program =
    "EXEC SQL SELECT date INTO :w FROM HEmployee WHERE no = :n END-EXEC.\n\
     EXEC SQL SELECT name FROM Person WHERE id = :w END-EXEC."
  in
  Alcotest.(check (list string)) "Date flowing into Int flagged"
    [ "L111" ] (codes (check_program program))

let test_l112_open_never_fetched () =
  let program =
    "EXEC SQL DECLARE C1 CURSOR FOR SELECT dep FROM Department END-EXEC.\n\
     EXEC SQL OPEN C1 END-EXEC.\n\
     EXEC SQL CLOSE C1 END-EXEC."
  in
  Alcotest.(check (list string)) "opened but never fetched"
    [ "L112" ] (codes (check_program program))

let test_declare_only_is_silent () =
  (* the classic COBOL shape: every cursor declared up front, never
     opened in this compilation unit — not a defect *)
  let program =
    "EXEC SQL DECLARE C1 CURSOR FOR SELECT dep FROM Department END-EXEC."
  in
  Alcotest.(check (list string)) "no diagnostics" []
    (codes (check_program program))

let test_clean_goldens_stay_clean () =
  List.iter
    (fun program ->
      Alcotest.(check (list string)) "no diagnostics" []
        (codes (check_program program)))
    [ select_into_program; cursor_program ]

(* ------------------------------------------------------------------ *)
(* Fuzzed recovery vs the generator's ground truth                      *)
(* ------------------------------------------------------------------ *)

let gen_spec =
  QCheck.Gen.(
    let* n_entities = int_range 1 3 in
    let* n_denorm = int_range 1 2 in
    let* refs = int_range 2 4 in
    let* seed = int_range 0 10_000 in
    return
      {
        Workload.Gen_schema.n_entities;
        rows_per_entity = 30;
        n_denorm;
        refs_per_denorm = refs;
        payload_per_ref = 1;
        rows_per_denorm = 60;
        null_ref_rate = 0.05;
        flow_navigation = true;
        seed = Int64.of_int seed;
      })

let print_spec (s : Workload.Gen_schema.spec) =
  Printf.sprintf "entities=%d denorm=%d refs=%d seed=%Ld"
    s.Workload.Gen_schema.n_entities s.Workload.Gen_schema.n_denorm
    s.Workload.Gen_schema.refs_per_denorm s.Workload.Gen_schema.seed

let arb_spec = QCheck.make ~print:print_spec gen_spec

let prop name f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:25 ~name arb_spec f)

let recovered_joins g =
  let schema = Database.schema g.Workload.Gen_schema.db in
  let per_stmt =
    let e = Embedded.scan_files g.Workload.Gen_schema.programs in
    Equijoin.dedupe
      (List.concat_map (Equijoin.of_statement schema) e.Embedded.statements)
  in
  let flow =
    Equijoin.dedupe
      (per_stmt
      @ List.concat_map (Dataflow.joins_of_program schema)
          g.Workload.Gen_schema.programs)
  in
  (per_stmt, flow)

let fuzz_recovers_planted spec =
  let g = Workload.Gen_schema.generate spec in
  let per_stmt, flow = recovered_joins g in
  List.for_all
    (fun j ->
      (not (List.exists (Equijoin.equal j) per_stmt))
      && List.exists (Equijoin.equal j) flow)
    g.Workload.Gen_schema.dataflow_only_joins
  && List.for_all
       (fun j -> List.exists (Equijoin.equal j) flow)
       g.Workload.Gen_schema.equijoins

let fuzz_flow_supersets spec =
  let g = Workload.Gen_schema.generate spec in
  let per_stmt, flow = recovered_joins g in
  List.for_all (fun j -> List.exists (Equijoin.equal j) flow) per_stmt

let fuzz_flow_corpus_lints_clean spec =
  let g = Workload.Gen_schema.generate spec in
  let schema = Database.schema g.Workload.Gen_schema.db in
  List.for_all
    (fun p -> Dbre_lint.Rules_workload.check_program schema p = [])
    g.Workload.Gen_schema.programs

(* ------------------------------------------------------------------ *)
(* Span well-formedness                                                 *)
(* ------------------------------------------------------------------ *)

let test_spans_inside_host_text () =
  List.iter
    (fun program ->
      let df =
        Dataflow.analyze (schema ())
          (Embedded.scan program).Embedded.statements
      in
      let check_span what name (sp : Span.t) =
        Alcotest.(check bool)
          (what ^ " span is inside the host program")
          true
          (sp.Span.s_off >= 0
          && sp.Span.s_off < sp.Span.e_off
          && sp.Span.e_off <= String.length program);
        Alcotest.(check string)
          (what ^ " span underlines the host variable")
          name
          (String.sub program sp.Span.s_off (sp.Span.e_off - sp.Span.s_off))
      in
      List.iter
        (fun (d : Dataflow.def) -> check_span "def" d.Dataflow.d_var d.Dataflow.d_span)
        df.Dataflow.defs;
      List.iter
        (fun (u : Dataflow.use) -> check_span "use" u.Dataflow.u_var u.Dataflow.u_span)
        df.Dataflow.uses)
    [ select_into_program; cursor_program ]

(* the paper corpus (all single-statement navigation) yields identical
   evidence with the analysis on or off *)
let test_flow_noop_on_paper_corpus () =
  let result_with flow =
    let db = Workload.Paper_example.database () in
    let config =
      {
        Dbre.Pipeline.default_config with
        oracle = Workload.Paper_example.oracle ();
        workload_flow = flow;
      }
    in
    Dbre.Pipeline.run ~config db
      (Dbre.Job_spec.Programs (Workload.Paper_example.programs ()))
  in
  let off = result_with false and on = result_with true in
  Alcotest.check (Alcotest.list join_t) "same Q"
    off.Dbre.Pipeline.equijoins on.Dbre.Pipeline.equijoins

let suite =
  [
    Alcotest.test_case "select-into chain" `Quick test_select_into_chain;
    Alcotest.test_case "cursor chain" `Quick test_cursor_chain;
    Alcotest.test_case "view expansion" `Quick test_view_expansion;
    Alcotest.test_case "kill rule" `Quick test_kill_rule;
    Alcotest.test_case "zero single-statement witnesses" `Quick
      test_zero_single_statement_witnesses;
    Alcotest.test_case "L109 use before def" `Quick test_l109_use_before_def;
    Alcotest.test_case "L110 dead write" `Quick test_l110_dead_write;
    Alcotest.test_case "L111 incompatible domains" `Quick
      test_l111_incompatible_domains;
    Alcotest.test_case "L112 open never fetched" `Quick
      test_l112_open_never_fetched;
    Alcotest.test_case "declare-only cursor is silent" `Quick
      test_declare_only_is_silent;
    Alcotest.test_case "clean goldens stay clean" `Quick
      test_clean_goldens_stay_clean;
    prop "fuzz: dataflow-only joins recovered, invisible per-statement"
      fuzz_recovers_planted;
    prop "fuzz: flow evidence supersets per-statement" fuzz_flow_supersets;
    prop "fuzz: generated flow corpus lints clean" fuzz_flow_corpus_lints_clean;
    Alcotest.test_case "spans inside host text" `Quick
      test_spans_inside_host_text;
    Alcotest.test_case "flow is a no-op on the paper corpus" `Quick
      test_flow_noop_on_paper_corpus;
  ]
