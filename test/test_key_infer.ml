open Relational
open Helpers
open Deps

let sample () =
  table "T" [ "a"; "b"; "c" ]
    [
      [ vi 1; vs "x"; vi 1 ];
      [ vi 2; vs "x"; vi 1 ];
      [ vi 3; vs "y"; vi 2 ];
      [ vi 4; vs "y"; vi 2 ];
    ]

let test_minimal_unique_sets () =
  (* a unique; (b,c) not unique; b,c alone not unique; bc not unique *)
  let keys, stats = Key_infer.minimal_unique_sets (sample ()) in
  Alcotest.(check (list names)) "only a" [ [ "a" ] ] keys;
  Alcotest.(check bool) "pruning skipped supersets of a" true
    (stats.Key_infer.sets_tested < 7)

let test_composite_key () =
  let t =
    table "T" [ "a"; "b" ]
      [ [ vi 1; vs "x" ]; [ vi 1; vs "y" ]; [ vi 2; vs "x" ] ]
  in
  let keys, _ = Key_infer.minimal_unique_sets t in
  Alcotest.(check (list names)) "composite only" [ [ "a"; "b" ] ] keys

let test_null_semantics () =
  (* NULL rows skipped by SQL UNIQUE; an all-null column is no key *)
  let t =
    table "T" [ "a"; "b" ]
      [ [ vnull; vs "x" ]; [ vnull; vs "y" ]; [ vi 1; vs "z" ] ]
  in
  let keys, _ = Key_infer.minimal_unique_sets ~max_size:1 t in
  Alcotest.(check (list names)) "a unique over non-nulls, b unique"
    [ [ "a" ]; [ "b" ] ] keys;
  let all_null = table "N" [ "a" ] [ [ vnull ]; [ vnull ] ] in
  let keys, _ = Key_infer.minimal_unique_sets all_null in
  Alcotest.(check (list names)) "all-null column is no key" [] keys

let test_empty_table () =
  let t = table "E" [ "a" ] [] in
  let keys, _ = Key_infer.minimal_unique_sets t in
  Alcotest.(check (list names)) "no keys on empty" [] keys

let test_suggest_skips_declared () =
  let db =
    database
      [
        ( Relation.make ~uniques:[ [ "id" ] ] "Declared" [ "id" ],
          [ [ vi 1 ]; [ vi 2 ] ] );
        (Relation.make "Bare" [ "k"; "v" ], [ [ vi 1; vs "x" ]; [ vi 2; vs "x" ] ]);
      ]
  in
  match Key_infer.suggest db with
  | [ ("Bare", [ [ "k" ] ]) ] -> ()
  | other ->
      Alcotest.failf "unexpected suggestions (%d entries)" (List.length other)

let test_apply_suggestions () =
  let db =
    database
      [ (Relation.make "Bare" [ "k"; "v" ], [ [ vi 1; vs "x" ]; [ vi 2; vs "x" ] ]) ]
  in
  let added =
    Key_infer.apply_suggestions ~confirm:(fun rel key -> rel = "Bare" && key = [ "k" ]) db
  in
  Alcotest.(check int) "one added" 1 added;
  Alcotest.(check bool) "declared now" true
    (Schema.is_key (Database.schema db) "Bare" [ "k" ]);
  Alcotest.(check int) "rows preserved" 2 (Database.cardinality db "Bare")

let test_pipeline_on_undeclared_keys () =
  (* strip the declared keys from the paper database, re-infer them, and
     check the pipeline recovers the same INDs *)
  let db = Workload.Paper_example.database () in
  let stripped = Database.create
      (Schema.of_relations
         (List.map
            (fun rel ->
              Relation.make ~domains:rel.Relation.domains
                ~not_nulls:rel.Relation.not_nulls rel.Relation.name
                rel.Relation.attrs)
            (Schema.relations (Database.schema db))))
  in
  List.iter
    (fun rel ->
      Array.iter
        (fun tup -> Table.insert_tuple (Database.table stripped rel.Relation.name) tup)
        (Table.rows (Database.table db rel.Relation.name)))
    (Schema.relations (Database.schema db));
  (* an expert confirming one key per relation. Note Assignment: the
     extension happens to be unique already on (dep, emp) — a proper
     subset of the paper's declared (emp, dep, proj) — and minimal-key
     discovery correctly reports the smaller set; the declared key is a
     design-time statement the data alone cannot recover. *)
  let paper_keys =
    [
      ("Person", [ "id" ]);
      ("HEmployee", [ "date"; "no" ]);
      ("Department", [ "dep" ]);
      ("Assignment", [ "dep"; "emp" ]);
    ]
  in
  let added =
    Key_infer.apply_suggestions
      ~confirm:(fun rel key -> List.mem (rel, key) paper_keys)
      stripped
  in
  Alcotest.(check int) "four keys confirmed" 4 added;
  let r =
    Dbre.Pipeline.run
      ~config:
        {
          Dbre.Pipeline.default_config with
          Dbre.Pipeline.oracle = Workload.Paper_example.oracle ();
        }
      stripped
      (Dbre.Job_spec.Equijoins (Workload.Paper_example.equijoins ()))
  in
  Alcotest.(check int) "six INDs as with declared keys" 6
    (List.length r.Dbre.Pipeline.ind_result.Dbre.Ind_discovery.inds)

let suite =
  [
    Alcotest.test_case "minimal unique sets" `Quick test_minimal_unique_sets;
    Alcotest.test_case "composite key" `Quick test_composite_key;
    Alcotest.test_case "null semantics" `Quick test_null_semantics;
    Alcotest.test_case "empty table" `Quick test_empty_table;
    Alcotest.test_case "suggest skips declared" `Quick test_suggest_skips_declared;
    Alcotest.test_case "apply suggestions" `Quick test_apply_suggestions;
    Alcotest.test_case "pipeline on undeclared keys" `Quick test_pipeline_on_undeclared_keys;
  ]
