open Sqlx

let parse = Parser.parse_statement
let parse_q = Parser.parse_query

let select_of = function
  | Ast.Select s -> s
  | _ -> Alcotest.fail "expected a plain SELECT"

let test_basic_select () =
  let s = select_of (parse_q "SELECT a, b FROM R") in
  Alcotest.(check int) "projections" 2 (List.length s.Ast.projections);
  Alcotest.(check int) "from" 1 (List.length s.Ast.from);
  Alcotest.(check bool) "no distinct" false s.Ast.distinct

let test_distinct_star () =
  let s = select_of (parse_q "SELECT DISTINCT * FROM R") in
  Alcotest.(check bool) "distinct" true s.Ast.distinct;
  (match s.Ast.projections with
  | [ Ast.Star ] -> ()
  | _ -> Alcotest.fail "expected star")

let test_qualified_and_alias () =
  let s = select_of (parse_q "SELECT p.name AS n FROM Person p, Dept AS d") in
  (match s.Ast.projections with
  | [ Ast.Proj (Ast.Col { tbl = Some "p"; col = "name"; _ }, Some "n") ] -> ()
  | _ -> Alcotest.fail "projection shape");
  match s.Ast.from with
  | [ { Ast.rel = "Person"; alias = Some "p"; _ }; { rel = "Dept"; alias = Some "d"; _ } ]
    -> ()
  | _ -> Alcotest.fail "from shape"

let test_where_conjunction () =
  let s =
    select_of
      (parse_q "SELECT a FROM R, S WHERE R.a = S.b AND R.c = 3 AND S.d = 'x'")
  in
  match s.Ast.where with
  | Some w -> Alcotest.(check int) "three conjuncts" 3 (List.length (Ast.cond_conjuncts w))
  | None -> Alcotest.fail "expected where"

let test_or_precedence () =
  let s = select_of (parse_q "SELECT a FROM R WHERE a = 1 AND b = 2 OR c = 3") in
  (* OR binds looser: (a AND b) OR c *)
  match s.Ast.where with
  | Some (Ast.Or (Ast.And _, Ast.Cmp _)) -> ()
  | _ -> Alcotest.fail "expected (AND) OR shape"

let test_in_subquery () =
  let s =
    select_of
      (parse_q "SELECT a FROM R WHERE a IN (SELECT b FROM S WHERE c > 0)")
  in
  match s.Ast.where with
  | Some (Ast.In (Ast.Col { col = "a"; _ }, Ast.Select _)) -> ()
  | _ -> Alcotest.fail "expected IN subquery"

let test_in_list_not_in () =
  let s = select_of (parse_q "SELECT a FROM R WHERE a IN (1, 2, 3)") in
  (match s.Ast.where with
  | Some (Ast.In_list (_, items)) ->
      Alcotest.(check int) "items" 3 (List.length items)
  | _ -> Alcotest.fail "expected IN list");
  let s2 = select_of (parse_q "SELECT a FROM R WHERE a NOT IN (1)") in
  match s2.Ast.where with
  | Some (Ast.Not (Ast.In_list _)) -> ()
  | _ -> Alcotest.fail "expected NOT IN"

let test_exists_correlated () =
  let s =
    select_of
      (parse_q
         "SELECT a FROM R WHERE EXISTS (SELECT 1 FROM S WHERE S.k = R.a)")
  in
  match s.Ast.where with
  | Some (Ast.Exists (Ast.Select _)) -> ()
  | _ -> Alcotest.fail "expected EXISTS"

let test_between_like_is_null () =
  let s =
    select_of
      (parse_q
         "SELECT a FROM R WHERE a BETWEEN 1 AND 9 AND b LIKE 'x%' AND c IS \
          NOT NULL")
  in
  match Option.map Ast.cond_conjuncts s.Ast.where with
  | Some [ Ast.Between _; Ast.Like _; Ast.Is_null (_, false) ] -> ()
  | _ -> Alcotest.fail "expected between/like/is-not-null"

let test_set_operations () =
  (match parse_q "SELECT a FROM R INTERSECT SELECT b FROM S" with
  | Ast.Intersect (Ast.Select _, Ast.Select _) -> ()
  | _ -> Alcotest.fail "intersect");
  (match parse_q "SELECT a FROM R UNION ALL SELECT b FROM S" with
  | Ast.Union _ -> ()
  | _ -> Alcotest.fail "union");
  match parse_q "SELECT a FROM R MINUS SELECT b FROM S" with
  | Ast.Except _ -> ()
  | _ -> Alcotest.fail "minus"

let test_join_on_normalized () =
  let s =
    select_of
      (parse_q "SELECT a FROM R INNER JOIN S ON R.a = S.b WHERE R.c = 1")
  in
  Alcotest.(check int) "both relations in from" 2 (List.length s.Ast.from);
  match s.Ast.where with
  | Some w -> Alcotest.(check int) "on folded into where" 2
      (List.length (Ast.cond_conjuncts w))
  | None -> Alcotest.fail "expected where"

let test_aggregates_group_order () =
  let s =
    select_of
      (parse_q
         "SELECT dep, COUNT(DISTINCT emp) FROM R GROUP BY dep ORDER BY dep \
          DESC")
  in
  (match s.Ast.projections with
  | [ Ast.Proj _; Ast.Agg (Ast.Count (true, { col = "emp"; _ }), None) ] -> ()
  | _ -> Alcotest.fail "agg shape");
  Alcotest.(check int) "group by" 1 (List.length s.Ast.group_by);
  match s.Ast.order_by with
  | [ (_, `Desc) ] -> ()
  | _ -> Alcotest.fail "order by desc"

let test_host_variable () =
  let s = select_of (parse_q "SELECT a FROM R WHERE a = :w-emp") in
  match s.Ast.where with
  | Some (Ast.Cmp (Ast.Eq, _, Ast.Host (":w-emp", _))) -> ()
  | _ -> Alcotest.fail "expected host variable"

let test_create_table () =
  match
    parse
      "CREATE TABLE T (id INT PRIMARY KEY, name VARCHAR(10) NOT NULL, dep \
       INT REFERENCES D(id), UNIQUE (name), FOREIGN KEY (dep) REFERENCES D \
       (id))"
  with
  | Ast.Create ct ->
      Alcotest.(check string) "name" "T" ct.Ast.ct_name;
      Alcotest.(check int) "columns" 3 (List.length ct.Ast.columns);
      Alcotest.(check int) "constraints" 2 (List.length ct.Ast.constraints)
  | _ -> Alcotest.fail "expected create"

let test_insert_update_delete () =
  (match parse "INSERT INTO T (a, b) VALUES (1, 'x'), (2, 'y')" with
  | Ast.Insert ("T", Some [ "a"; "b" ], rows) ->
      Alcotest.(check int) "two rows" 2 (List.length rows)
  | _ -> Alcotest.fail "insert");
  (match parse "UPDATE T SET a = 1 WHERE b = 2" with
  | Ast.Update ("T", [ ("a", Ast.Lit _) ], Some _) -> ()
  | _ -> Alcotest.fail "update");
  match parse "DELETE FROM T WHERE a = 1" with
  | Ast.Delete ("T", Some _) -> ()
  | _ -> Alcotest.fail "delete"

let test_script () =
  let stmts = Parser.parse_script "SELECT a FROM R; ; SELECT b FROM S;" in
  Alcotest.(check int) "two statements" 2 (List.length stmts)

let test_errors () =
  List.iter
    (fun input ->
      try
        ignore (parse input);
        Alcotest.failf "expected parse error for %S" input
      with Parser.Error _ -> ())
    [
      "SELECT FROM R";
      "SELECT a FROM";
      "SELECT a FROM R WHERE";
      "SELECT a FROM R extra garbage )";
      "CREATE TABLE (x INT)";
    ]

let test_keyword_as_name () =
  (* legacy schemas use reserved-ish words as column names *)
  let s = select_of (parse_q "SELECT no, date FROM HEmployee") in
  Alcotest.(check int) "projections" 2 (List.length s.Ast.projections)

let suite =
  [
    Alcotest.test_case "basic select" `Quick test_basic_select;
    Alcotest.test_case "distinct star" `Quick test_distinct_star;
    Alcotest.test_case "qualified cols and aliases" `Quick test_qualified_and_alias;
    Alcotest.test_case "where conjunction" `Quick test_where_conjunction;
    Alcotest.test_case "or precedence" `Quick test_or_precedence;
    Alcotest.test_case "in subquery" `Quick test_in_subquery;
    Alcotest.test_case "in list / not in" `Quick test_in_list_not_in;
    Alcotest.test_case "exists" `Quick test_exists_correlated;
    Alcotest.test_case "between like is-null" `Quick test_between_like_is_null;
    Alcotest.test_case "set operations" `Quick test_set_operations;
    Alcotest.test_case "join-on normalization" `Quick test_join_on_normalized;
    Alcotest.test_case "aggregates group order" `Quick test_aggregates_group_order;
    Alcotest.test_case "host variables" `Quick test_host_variable;
    Alcotest.test_case "create table" `Quick test_create_table;
    Alcotest.test_case "insert update delete" `Quick test_insert_update_delete;
    Alcotest.test_case "script" `Quick test_script;
    Alcotest.test_case "parse errors" `Quick test_errors;
    Alcotest.test_case "keywords as names" `Quick test_keyword_as_name;
  ]
