(* Randomized engine-equivalence suite: the naive, partition and
   columnar engines must return identical verdicts for every primitive
   they all implement — FD satisfaction, distinct counting, equi-join
   distinct counting and key checks — including on NULL-heavy
   extensions, and the columnar caches must never serve stale answers
   after an insert.

   Deterministic by construction: tables come from Workload.Rng streams
   and the schema-level cases from Workload.Gen_schema, both seeded. *)

open Helpers
open Relational
open Deps
module Rng = Workload.Rng

let engines =
  [
    ("naive", Engine.naive);
    ("partition", Engine.partition);
    ("columnar", Engine.columnar);
    ("columnar-uncached", Engine.make ~cache:Engine.Cache_off ());
    ("parallel:2", Engine.parallel ~domains:2 ());
  ]

(* random table over [attrs]: small value pools so duplicates, shared
   projections and accidental dependencies are common; [null_rate]
   cranks up the NULL density for the NULL-semantics cases *)
let random_table rng ?(null_rate = 0.15) name attrs n_rows =
  let cell rng i =
    if Rng.chance rng null_rate then Value.Null
    else if i mod 2 = 0 then Value.Int (Rng.int rng 4)
    else Value.String (Rng.pick rng [ "x"; "y"; "z" ])
  in
  let rows =
    List.init n_rows (fun _ -> List.mapi (fun i _ -> cell rng i) attrs)
  in
  table name attrs rows

let random_subset rng attrs =
  let k = Rng.int_in rng 1 (min 3 (List.length attrs)) in
  List.sort String.compare (Rng.sample rng k attrs)

let attrs5 = [ "a"; "b"; "c"; "d"; "e" ]

(* ---------- holds ---------- *)

let test_holds_agree () =
  let rng = Rng.create 7L in
  for round = 1 to 40 do
    let null_rate = if round mod 2 = 0 then 0.4 else 0.1 in
    let t = random_table rng ~null_rate "T" attrs5 (Rng.int_in rng 0 40) in
    for _ = 1 to 6 do
      let lhs = random_subset rng attrs5 in
      let rest = List.filter (fun a -> not (List.mem a lhs)) attrs5 in
      if rest <> [] then begin
        let f = fd "T" lhs [ Rng.pick rng rest ] in
        let expected = Fd_infer.holds ~engine:Engine.naive t f in
        List.iter
          (fun (name, engine) ->
            Alcotest.(check bool)
              (Printf.sprintf "round %d: %s on %s" round name (Fd.to_string f))
              expected
              (Fd_infer.holds ~engine t f))
          engines
      end
    done
  done

(* ---------- count_distinct ---------- *)

let db_of t =
  let rel = Table.schema t in
  let db = Database.create (Schema.of_relations [ rel ]) in
  Database.replace_table db t;
  db

let test_count_distinct_agree () =
  let rng = Rng.create 11L in
  for round = 1 to 40 do
    let null_rate = if round mod 2 = 0 then 0.5 else 0.05 in
    let t = random_table rng ~null_rate "T" attrs5 (Rng.int_in rng 0 50) in
    let db = db_of t in
    for _ = 1 to 4 do
      let attrs = random_subset rng attrs5 in
      let expected = Database.count_distinct ~engine:Engine.naive db "T" attrs in
      List.iter
        (fun (name, engine) ->
          Alcotest.(check int)
            (Printf.sprintf "round %d: ||T[%s]|| via %s" round
               (String.concat "," attrs) name)
            expected
            (Database.count_distinct ~engine db "T" attrs))
        engines
    done
  done

(* ---------- equijoin_distinct_count ---------- *)

let test_join_count_agree () =
  let rng = Rng.create 13L in
  let attrs_l = [ "a"; "b"; "c" ] and attrs_r = [ "u"; "v"; "w"; "x" ] in
  for round = 1 to 40 do
    let null_rate = if round mod 2 = 0 then 0.4 else 0.1 in
    let t1 = random_table rng ~null_rate "L" attrs_l (Rng.int_in rng 0 40) in
    let t2 = random_table rng ~null_rate "R" attrs_r (Rng.int_in rng 0 40) in
    let schema = Schema.of_relations [ Table.schema t1; Table.schema t2 ] in
    let db = Database.create schema in
    Database.replace_table db t1;
    Database.replace_table db t2;
    for _ = 1 to 4 do
      let k = Rng.int_in rng 1 2 in
      let a1 = Rng.sample rng k attrs_l and a2 = Rng.sample rng k attrs_r in
      let expected =
        Database.join_count ~engine:Engine.naive db ("L", a1) ("R", a2)
      in
      List.iter
        (fun (name, engine) ->
          Alcotest.(check int)
            (Printf.sprintf "round %d: ||L[%s] ⋈ R[%s]|| via %s" round
               (String.concat "," a1) (String.concat "," a2) name)
            expected
            (Database.join_count ~engine db ("L", a1) ("R", a2)))
        engines
    done
  done

(* ---------- key checks ---------- *)

let test_unique_agree () =
  let rng = Rng.create 17L in
  for round = 1 to 30 do
    let t = random_table rng ~null_rate:0.2 "T" attrs5 (Rng.int_in rng 0 30) in
    let attrs = random_subset rng attrs5 in
    let expected = Key_infer.unique_over ~engine:Engine.naive t attrs in
    List.iter
      (fun (name, engine) ->
        Alcotest.(check bool)
          (Printf.sprintf "round %d: unique(%s) via %s" round
             (String.concat "," attrs) name)
          expected
          (Key_infer.unique_over ~engine t attrs))
      engines
  done

(* ---------- cache invalidation ---------- *)

(* the memoized store must never serve a pre-insert answer: query
   through the cached columnar engine, mutate the table, query again
   and compare with a cache-less naive recomputation *)
let test_cache_invalidation () =
  let rng = Rng.create 23L in
  for round = 1 to 30 do
    let t = random_table rng ~null_rate:0.3 "T" attrs5 (Rng.int_in rng 1 30) in
    let db = db_of t in
    let attrs = random_subset rng attrs5 in
    let f = fd "T" [ List.hd attrs5 ] [ List.nth attrs5 1 ] in
    (* warm every cache layer: distinct set, partition, verdict *)
    ignore (Database.count_distinct db "T" attrs);
    ignore (Fd_infer.holds t f);
    ignore (Key_infer.unique_over t attrs);
    (* mutate: either a brand-new row or a duplicate of an existing one *)
    let row =
      if Rng.bool rng then
        List.mapi
          (fun i _ -> if i mod 2 = 0 then Value.Int (Rng.int rng 4) else Value.Null)
          attrs5
      else List.nth (Table.to_lists t) (Rng.int rng (Table.cardinality t))
    in
    Database.insert db "T" row;
    Alcotest.(check int)
      (Printf.sprintf "round %d: count after insert" round)
      (Database.count_distinct ~engine:Engine.naive db "T" attrs)
      (Database.count_distinct db "T" attrs);
    Alcotest.(check bool)
      (Printf.sprintf "round %d: holds after insert" round)
      (Fd_infer.holds ~engine:Engine.naive t f)
      (Fd_infer.holds t f);
    Alcotest.(check bool)
      (Printf.sprintf "round %d: unique after insert" round)
      (Key_infer.unique_over ~engine:Engine.naive t attrs)
      (Key_infer.unique_over t attrs)
  done

(* cross-store staleness: the join-count cache keys on the peer store's
   identity, so a peer insert must invalidate the pair *)
let test_join_cache_invalidation () =
  let rng = Rng.create 29L in
  for round = 1 to 20 do
    let t1 = random_table rng ~null_rate:0.2 "L" [ "a"; "b" ] 15 in
    let t2 = random_table rng ~null_rate:0.2 "R" [ "u"; "v" ] 15 in
    let schema = Schema.of_relations [ Table.schema t1; Table.schema t2 ] in
    let db = Database.create schema in
    Database.replace_table db t1;
    Database.replace_table db t2;
    ignore (Database.join_count db ("L", [ "a" ]) ("R", [ "u" ]));
    Database.insert db "R" [ Value.Int (Rng.int rng 4); Value.Null ];
    Alcotest.(check int)
      (Printf.sprintf "round %d: join count after peer insert" round)
      (Database.join_count ~engine:Engine.naive db ("L", [ "a" ]) ("R", [ "u" ]))
      (Database.join_count db ("L", [ "a" ]) ("R", [ "u" ]))
  done

(* ---------- schema-scale: Gen_schema workloads ---------- *)

(* every planted dependency and every navigation equi-join of a small
   synthetic workload gets the same verdict from all engines *)
let test_generated_workload_agree () =
  List.iter
    (fun seed ->
      let spec =
        {
          Workload.Gen_schema.default_spec with
          Workload.Gen_schema.seed;
          rows_per_entity = 40;
          rows_per_denorm = 80;
          null_ref_rate = 0.3;
        }
      in
      let g = Workload.Gen_schema.generate spec in
      let db = g.Workload.Gen_schema.db in
      List.iter
        (fun (f : Fd.t) ->
          let t = Database.table db f.Fd.rel in
          let expected = Fd_infer.holds ~engine:Engine.naive t f in
          List.iter
            (fun (name, engine) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s via %s" (Fd.to_string f) name)
                expected
                (Fd_infer.holds ~engine t f))
            engines)
        g.Workload.Gen_schema.truth.Workload.Gen_schema.planted_fds;
      List.iter
        (fun (j : Sqlx.Equijoin.t) ->
          let left = (j.Sqlx.Equijoin.rel1, j.Sqlx.Equijoin.attrs1) in
          let right = (j.Sqlx.Equijoin.rel2, j.Sqlx.Equijoin.attrs2) in
          let n l = Database.count_distinct ~engine:Engine.naive db (fst l) (snd l) in
          let nj = Database.join_count ~engine:Engine.naive db left right in
          List.iter
            (fun (name, engine) ->
              Alcotest.(check int)
                (Printf.sprintf "n_left of %s via %s" (Sqlx.Equijoin.to_string j)
                   name)
                (n left)
                (Database.count_distinct ~engine db (fst left) (snd left));
              Alcotest.(check int)
                (Printf.sprintf "n_join of %s via %s" (Sqlx.Equijoin.to_string j)
                   name)
                nj
                (Database.join_count ~engine db left right))
            engines)
        g.Workload.Gen_schema.equijoins)
    [ 3L; 101L ]

(* the full IND-Discovery stage returns the identical elicitation,
   whatever the engine (including the parallel warm path) *)
let test_ind_discovery_agree () =
  let spec =
    {
      Workload.Gen_schema.default_spec with
      Workload.Gen_schema.seed = 55L;
      rows_per_entity = 30;
      rows_per_denorm = 60;
      null_ref_rate = 0.2;
    }
  in
  let run engine =
    let g = Workload.Gen_schema.generate spec in
    let r =
      Dbre.Ind_discovery.run ~engine Dbre.Oracle.automatic
        g.Workload.Gen_schema.db g.Workload.Gen_schema.equijoins
    in
    r.Dbre.Ind_discovery.inds
  in
  let expected = run Engine.naive in
  List.iter
    (fun (name, engine) ->
      check_sorted_inds (Printf.sprintf "INDs via %s" name) expected
        (run engine))
    engines

let suite =
  [
    Alcotest.test_case "holds agrees across engines" `Quick test_holds_agree;
    Alcotest.test_case "count_distinct agrees" `Quick test_count_distinct_agree;
    Alcotest.test_case "join_count agrees" `Quick test_join_count_agree;
    Alcotest.test_case "unique_over agrees" `Quick test_unique_agree;
    Alcotest.test_case "insert invalidates caches" `Quick
      test_cache_invalidation;
    Alcotest.test_case "peer insert invalidates join cache" `Quick
      test_join_cache_invalidation;
    Alcotest.test_case "generated workloads agree" `Quick
      test_generated_workload_agree;
    Alcotest.test_case "ind-discovery agrees (incl. parallel)" `Quick
      test_ind_discovery_agree;
  ]
