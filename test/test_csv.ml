open Relational
open Helpers

let test_parse_basic () =
  Alcotest.(check (list (list string)))
    "rows" [ [ "a"; "b" ]; [ "c"; "d" ] ]
    (Csv.parse "a,b\nc,d\n");
  Alcotest.(check (list (list string)))
    "no trailing newline" [ [ "a"; "b" ] ]
    (Csv.parse "a,b")

let test_parse_quoting () =
  Alcotest.(check (list (list string)))
    "embedded comma" [ [ "a,b"; "c" ] ]
    (Csv.parse "\"a,b\",c\n");
  Alcotest.(check (list (list string)))
    "doubled quote" [ [ "say \"hi\"" ] ]
    (Csv.parse "\"say \"\"hi\"\"\"\n");
  Alcotest.(check (list (list string)))
    "embedded newline" [ [ "a\nb"; "c" ] ]
    (Csv.parse "\"a\nb\",c\n");
  Alcotest.(check (list (list string)))
    "crlf" [ [ "a" ]; [ "b" ] ]
    (Csv.parse "a\r\nb\r\n")

let test_parse_errors () =
  let e =
    expect_error "unterminated quote" Error.Csv_syntax (fun () ->
        Csv.parse "\"abc")
  in
  check_contains "opening position" ~sub:"line 1, column 1" e.Error.message;
  (* the position is where the quote opened, not EOF *)
  let e =
    expect_error "quote opened mid-document" Error.Csv_syntax (fun () ->
        Csv.parse "a,b\nc,\"open")
  in
  check_contains "mid-document position" ~sub:"line 2, column 3"
    e.Error.message;
  check_contains "names the fault" ~sub:"unterminated quoted field"
    e.Error.message

let test_parse_lenient () =
  (* clean input: no errors, same rows as strict parse *)
  let rows, errs = Csv.parse_lenient "a,b\nc,d\n" in
  Alcotest.(check (list (list string))) "clean rows"
    [ [ "a"; "b" ]; [ "c"; "d" ] ]
    rows;
  Alcotest.(check int) "clean errors" 0 (List.length errs);
  (* torn row is dropped, prior rows survive, position is reported *)
  let rows, errs = Csv.parse_lenient "a,b\nc,\"open" in
  Alcotest.(check (list (list string))) "torn row dropped" [ [ "a"; "b" ] ] rows;
  match errs with
  | [ e ] ->
      Alcotest.(check int) "row index" 1 e.Csv.se_row;
      Alcotest.(check int) "line" 2 e.Csv.se_line;
      Alcotest.(check int) "column" 3 e.Csv.se_col
  | _ -> Alcotest.fail "expected exactly one syntax error"

let test_roundtrip () =
  let rows = [ [ "a,b"; "plain" ]; [ "with \"q\""; "x\ny" ] ] in
  Alcotest.(check (list (list string)))
    "render/parse roundtrip" rows
    (Csv.parse (Csv.render rows))

(* [Csv.load] shims for the tests below: strict loading re-raises the
   typed error like pre-[load] code did; lenient loading expects at
   least one quarantined problem *)
let load_strict ?header rel csv =
  match Csv.load ?header ~mode:`Strict rel csv with
  | Ok (t, _) -> t
  | Error e -> raise (Error.Error e)

let load_reported rel csv =
  match Csv.load ~mode:`Quarantine rel csv with
  | Ok (t, Some report) -> (t, report)
  | Ok (_, None) -> Alcotest.fail "expected a quarantine report"
  | Error _ -> Alcotest.fail "quarantine load never fails"

let test_load_table () =
  let rel =
    Relation.make
      ~domains:[ ("id", Domain.Int); ("name", Domain.String) ]
      ~uniques:[ [ "id" ] ] "T" [ "id"; "name" ]
  in
  let t = load_strict rel "id,name\n1,ann\n2,bob\n" in
  Alcotest.(check int) "rows" 2 (Table.cardinality t);
  Alcotest.(check value) "typed int" (vi 1) (Table.rows t).(0).(0);
  (* header may reorder columns *)
  let t2 = load_strict rel "name,id\nann,1\n" in
  Alcotest.(check value) "reordered" (vi 1) (Table.rows t2).(0).(0);
  (* empty field loads as NULL *)
  let t3 = load_strict rel "id,name\n3,\n" in
  Alcotest.(check value) "null" vnull (Table.rows t3).(0).(1);
  (* headerless follows declared order *)
  let t4 = load_strict ~header:false rel "4,dan\n" in
  Alcotest.(check value) "headerless" (vi 4) (Table.rows t4).(0).(0)

let test_load_errors () =
  let rel = Relation.make "T" [ "id" ] in
  let e =
    expect_error "unknown column" Error.Unknown_column (fun () ->
        load_strict rel "ghost\n1\n")
  in
  Alcotest.(check (option string)) "attribute" (Some "ghost") e.Error.attribute;
  Alcotest.(check (option string)) "relation" (Some "T") e.Error.relation;
  let e =
    expect_error "width mismatch" Error.Csv_arity (fun () ->
        load_strict rel "id\n1,2\n")
  in
  check_contains "row and line" ~sub:"row 0 (line 2)" e.Error.message;
  check_contains "widths" ~sub:"width 2, expected 1" e.Error.message;
  let typed =
    Relation.make ~domains:[ ("id", Domain.Int) ] "T" [ "id" ]
  in
  let e =
    expect_error "type mismatch" Error.Type_mismatch (fun () ->
        load_strict typed "id\n1\nx\n")
  in
  Alcotest.(check (option string)) "bad attribute" (Some "id") e.Error.attribute;
  check_contains "bad cell position" ~sub:"row 1 (line 3)" e.Error.message;
  let wide = Relation.make "T" [ "id"; "name" ] in
  let e =
    expect_error "missing declared column" Error.Missing_column (fun () ->
        load_strict wide "id\n1\n")
  in
  Alcotest.(check (option string)) "missing attribute" (Some "name")
    e.Error.attribute

let lenient_rel =
  Relation.make
    ~domains:[ ("id", Domain.Int); ("name", Domain.String) ]
    "T" [ "id"; "name" ]

let test_load_lenient () =
  (* one bad cell, one arity overflow, one torn row: two good rows remain *)
  let csv = "id,name\n1,ann\nx,bob\n2,col,extra\n3,dan\n4,\"torn" in
  let t, report = load_reported lenient_rel csv in
  Alcotest.(check int) "kept rows" 2 (Table.cardinality t);
  Alcotest.(check int) "report kept" 2 report.Quarantine.kept;
  Alcotest.(check int) "report total" 5 report.Quarantine.total_rows;
  Alcotest.(check int) "quarantined" 3 (Quarantine.count report);
  let codes =
    List.map
      (fun (en : Quarantine.entry) -> Error.code_to_string en.error.Error.code)
      report.Quarantine.entries
  in
  Alcotest.(check (list string)) "entry codes"
    [ "csv-syntax"; "type-mismatch"; "csv-arity" ]
    codes;
  let rows =
    List.map (fun (en : Quarantine.entry) -> en.Quarantine.row)
      report.Quarantine.entries
  in
  Alcotest.(check (list (option int))) "entry rows"
    [ Some 4; Some 1; Some 2 ]
    rows

let test_load_lenient_columns () =
  (* undeclared header column is ignored with a table-level entry *)
  let t, report =
    load_reported lenient_rel "id,name,ghost\n1,ann,zzz\n"
  in
  Alcotest.(check int) "row kept" 1 (Table.cardinality t);
  Alcotest.(check int) "one entry" 1 (Quarantine.count report);
  (match report.Quarantine.entries with
  | [ en ] ->
      Alcotest.(check (option int)) "table-level" None en.Quarantine.row;
      Alcotest.(check (option string)) "names the column" (Some "ghost")
        en.Quarantine.error.Error.attribute
  | _ -> Alcotest.fail "expected one entry");
  (* missing declared column is NULL-filled with a table-level entry *)
  let t, report = load_reported lenient_rel "id\n1\n" in
  Alcotest.(check int) "null-filled row kept" 1 (Table.cardinality t);
  Alcotest.(check value) "filled with NULL" vnull (Table.rows t).(0).(1);
  Alcotest.(check int) "one missing-column entry" 1 (Quarantine.count report)

let test_dump_roundtrip () =
  let t =
    table "T" [ "a"; "b" ]
      [ [ vi 1; vs "x,y" ]; [ vnull; vs "plain" ] ]
  in
  let rel =
    Relation.make
      ~domains:[ ("a", Domain.Int); ("b", Domain.String) ]
      "T" [ "a"; "b" ]
  in
  let reloaded = load_strict rel (Csv.dump_table t) in
  Alcotest.(check int) "cardinality preserved" 2 (Table.cardinality reloaded);
  Alcotest.(check value) "null roundtrips" vnull (Table.rows reloaded).(1).(0);
  Alcotest.(check value) "comma field roundtrips" (vs "x,y")
    (Table.rows reloaded).(0).(1)

let suite =
  [
    Alcotest.test_case "parse basic" `Quick test_parse_basic;
    Alcotest.test_case "parse quoting" `Quick test_parse_quoting;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse lenient" `Quick test_parse_lenient;
    Alcotest.test_case "render roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "load table" `Quick test_load_table;
    Alcotest.test_case "load errors" `Quick test_load_errors;
    Alcotest.test_case "load lenient" `Quick test_load_lenient;
    Alcotest.test_case "load lenient columns" `Quick test_load_lenient_columns;
    Alcotest.test_case "dump/load roundtrip" `Quick test_dump_roundtrip;
  ]
