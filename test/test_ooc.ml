(* Out-of-core column store: bit-packed segments, spill + mmap, and
   zone-map pruning must be invisible to every verdict.

   - fuzzed segment-boundary equivalence: the streaming builder and the
     seed reference loader produce identical codes and dictionaries for
     row counts straddling segment edges, at every pack width;
   - spill -> mmap -> verdict round-trip: encoding under a tiny
     residency budget spills segments and maps them back, and neither
     the decoded codes nor any FD/IND verdict changes;
   - zone-map pruning property: every segment the sweep skips is
     verdict-irrelevant — the same batch with pruning disabled returns
     the same verdicts (fuzzed), and isolated-key data actually skips;
   - delete compaction: tail-only deletes take the reclaim path, deep
     deletes recompact, and both end up identical to a fresh encode of
     the surviving rows;
   - the full pipeline under a spill budget produces byte-identical
     artifacts to an in-RAM run. *)

open Relational
open Helpers
module Gen = Workload.Gen_schema
module Pipeline = Dbre.Pipeline
module Job_spec = Dbre.Job_spec

(* -- deterministic pseudo-random stream ------------------------------- *)

let lcg = ref 0

let rand m =
  lcg := ((!lcg * 1103515245) + 12345) land 0x3FFFFFFF;
  !lcg mod m

let reset_lcg () = lcg := 424242

let spill_dir_counter = ref 0

let fresh_spill_dir () =
  incr spill_dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "dbre-ooc-test-%d-%d" (Unix.getpid ()) !spill_dir_counter)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* -- fuzzed segment-boundary equivalence ------------------------------ *)

let rel2 =
  Relation.make "r"
    ~domains:[ ("k", Domain.Int); ("v", Domain.String) ]
    [ "k"; "v" ]

(* [cardinality] controls the dictionary size and thus the pack width:
   2 distinct codes -> 1 bit, up to 65536+ -> 32 *)
let gen_text ~n ~cardinality =
  let b = Buffer.create (16 * n) in
  Buffer.add_string b "k,v\n";
  for i = 0 to n - 1 do
    if rand 10 = 0 then Buffer.add_string b ",\n"
    else
      Buffer.add_string b
        (Printf.sprintf "%d,s%d\n" (i mod cardinality) (rand cardinality))
  done;
  Buffer.contents b

let load_both text =
  match
    ( Csv.load ~mode:`Strict rel2 text,
      Csv.load_reference ~mode:`Strict rel2 text )
  with
  | Ok (t1, _), Ok (t2, _) -> (t1, t2)
  | _ -> Alcotest.fail "csv load failed"

let check_stores_identical msg t1 t2 =
  let s1 = Column_store.of_table t1 and s2 = Column_store.of_table t2 in
  List.iter
    (fun a ->
      let c1 = Column_store.column s1 a and c2 = Column_store.column s2 a in
      Alcotest.(check bool)
        (Printf.sprintf "%s: dict of %s" msg a)
        true
        (Column_store.column_dict c1 = Column_store.column_dict c2);
      Alcotest.(check bool)
        (Printf.sprintf "%s: codes of %s" msg a)
        true
        (Column_store.column_codes c1 = Column_store.column_codes c2))
    (Table.schema t1).Relation.attrs

let test_boundary_equivalence () =
  reset_lcg ();
  Ooc.with_config ~segment_rows:16 (fun () ->
      List.iter
        (fun n ->
          List.iter
            (fun cardinality ->
              let text = gen_text ~n ~cardinality in
              let t1, t2 = load_both text in
              check_stores_identical
                (Printf.sprintf "n=%d card=%d" n cardinality)
                t1 t2;
              (* the builder-made store really is segmented *)
              let r = Column_store.residency (Column_store.of_table t1) in
              Alcotest.(check int)
                (Printf.sprintf "n=%d: sealed count" n)
                (n / 16 * 2) (* two columns *)
                r.Column_store.sealed_segments;
              Alcotest.(check int)
                (Printf.sprintf "n=%d: tail rows" n)
                (n mod 16) r.Column_store.tail_rows)
            [ 1; 3; 12; 200 ])
        [ 0; 1; 15; 16; 17; 31; 32; 33; 47; 48; 49 ])

(* 300+ distinct values forces 16-bit segments; 66000+ forces 32-bit *)
let test_wide_dictionaries () =
  reset_lcg ();
  Ooc.with_config ~segment_rows:64 (fun () ->
      let text = gen_text ~n:700 ~cardinality:300 in
      let t1, t2 = load_both text in
      check_stores_identical "width 16" t1 t2);
  Ooc.with_config ~segment_rows:16384 (fun () ->
      let b = Buffer.create (1 lsl 20) in
      Buffer.add_string b "k,v\n";
      for i = 0 to 69999 do
        Buffer.add_string b (Printf.sprintf "%d,w\n" i)
      done;
      let t1, t2 = load_both (Buffer.contents b) in
      check_stores_identical "width 32" t1 t2;
      let c = Column_store.column (Column_store.of_table t1) "k" in
      ignore c;
      let r = Column_store.residency (Column_store.of_table t1) in
      (* the k column needs 32-bit codes once the dictionary passes
         65536 entries *)
      Alcotest.(check bool) "a 32-bit segment exists" true
        (List.mem_assoc 32 r.Column_store.width_histogram))

(* -- spill -> mmap -> verdict round-trip ------------------------------ *)

let skew_rows n =
  List.init n (fun i ->
      [
        vi i;
        (* unique key *)
        vs (Printf.sprintf "g%d" (i mod 7));
        (* 7 groups *)
        vi (i mod 7);
        (* function of the group attr: k -> g -> h all hold *)
      ])

let test_spill_roundtrip () =
  let dir = fresh_spill_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  Ooc.with_config ~spill_dir:dir ~resident_budget_words:64 ~segment_rows:32
    (fun () ->
      Ooc.reset_stats ();
      let t = table "R" [ "k"; "g"; "h" ] (skew_rows 200) in
      let s = Column_store.build t in
      Column_store.ensure_columns s [ "k"; "g"; "h" ];
      (* 64 words cannot hold two 32-row segments: the encode pass
         itself must have spilled *)
      let st = Ooc.stats () in
      Alcotest.(check bool) "segments spilled" true (st.Ooc.spill_writes > 0);
      let r = Column_store.residency s in
      Alcotest.(check bool) "some segments are on disk only" true
        (r.Column_store.spilled_segments > 0);
      (* decoding a spilled column maps its segments back; the codes
         are byte-identical to a fresh in-RAM encode *)
      let codes_spilled = Column_store.column_codes (Column_store.column s "k") in
      Alcotest.(check bool) "mmap loads happened" true
        ((Ooc.stats ()).Ooc.map_loads > 0);
      let codes_ram =
        Ooc.with_config ~resident_budget_words:max_int (fun () ->
            let s2 = Column_store.build t in
            Column_store.column_codes (Column_store.column s2 "k"))
      in
      Alcotest.(check bool) "spilled codes = resident codes" true
        (codes_spilled = codes_ram);
      (* verdicts through the spilled store agree with the naive engine *)
      let verdicts = Column_store.fd_batch s ~lhs:[ "g" ] ~rhs:[ "h"; "k" ] in
      Alcotest.(check (list (pair string bool)))
        "fd verdicts over spilled segments"
        [ ("h", true); ("k", false) ]
        verdicts;
      Alcotest.(check int) "distinct count over spilled segments" 200
        (Column_store.count_distinct s [ "k" ]))

(* -- zone-map pruning -------------------------------------------------- *)

(* sequential unique keys: every sealed segment's code interval is
   isolated and all-distinct, so a non-retaining sweep skips them all *)
let test_zone_pruning_skips () =
  Ooc.with_config ~segment_rows:16 ~zone_pruning:true (fun () ->
      let t = table "R" [ "k"; "g"; "h" ] (skew_rows 100) in
      let s = Column_store.build t in
      Column_store.ensure_columns s [ "k"; "g"; "h" ];
      Ooc.reset_stats ();
      let v = Column_store.fd_batch s ~lhs:[ "k" ] ~rhs:[ "g"; "h" ] in
      Alcotest.(check (list (pair string bool)))
        "unique lhs: all hold"
        [ ("g", true); ("h", true) ]
        v;
      let st = Ooc.stats () in
      Alcotest.(check int) "every sealed segment skipped" 6
        st.Ooc.zone_segments_skipped;
      Alcotest.(check int) "none swept" 0 st.Ooc.zone_segments_swept)

(* fuzzed: pruning on vs off must return identical verdict batches,
   including tables engineered to defeat the skip conditions (keys
   duplicated across segments, NULLs, violations hiding in the tail) *)
let test_zone_pruning_equivalence () =
  reset_lcg ();
  for round = 1 to 60 do
    let n = 20 + rand 60 in
    let kcard = 1 + rand (n + 20) in
    let rows =
      List.init n (fun i ->
          [
            (if rand 12 = 0 then vnull
             else vi (match rand 3 with 0 -> i | _ -> rand kcard));
            (if rand 12 = 0 then vnull else vs (Printf.sprintf "g%d" (rand 9)));
            vi (rand 5);
          ])
    in
    let run pruning =
      Ooc.with_config ~segment_rows:16 ~zone_pruning:pruning (fun () ->
          let t = table "R" [ "a"; "b"; "c" ] rows in
          let s = Column_store.build t in
          Column_store.ensure_columns s [ "a"; "b"; "c" ];
          ( Column_store.fd_batch s ~lhs:[ "a" ] ~rhs:[ "b"; "c" ],
            Column_store.fd_batch s ~lhs:[ "a"; "b" ] ~rhs:[ "c" ] ))
    in
    let on = run true and off = run false in
    Alcotest.(check bool)
      (Printf.sprintf "round %d: pruned verdicts = unpruned" round)
      true (on = off)
  done

(* the IND disjoint-range short-circuit is a proof, not a heuristic *)
let test_ind_short_circuit () =
  Ooc.with_config ~zone_pruning:true (fun () ->
      let l = table "L" [ "ref" ] (List.init 50 (fun i -> [ vi (1000 + i) ])) in
      let r = table "R" [ "id" ] (List.init 50 (fun i -> [ vi i ])) in
      let sl = Column_store.build l and sr = Column_store.build r in
      Ooc.reset_stats ();
      Alcotest.(check int) "disjoint ranges join to 0" 0
        (Column_store.equijoin_distinct_count sl [ "ref" ] sr [ "id" ]);
      Alcotest.(check int) "short-circuit taken" 1
        (Ooc.stats ()).Ooc.ind_zone_short_circuits;
      (* overlapping ranges take the real intersection *)
      let r2 = table "R2" [ "id" ] (List.init 50 (fun i -> [ vi (990 + i) ])) in
      let sr2 = Column_store.build r2 in
      Alcotest.(check int) "overlap counts exactly" 40
        (Column_store.equijoin_distinct_count sl [ "ref" ] sr2 [ "id" ]))

(* -- delete compaction and code reclaim ------------------------------- *)

let mod_rows n =
  List.init n (fun i ->
      [ vi (i mod 13); vs (Printf.sprintf "s%d" (i mod 5)); vi i ])

let check_equals_fresh_encode msg t s =
  let fresh = Column_store.build t in
  List.iter
    (fun a ->
      let cm = Column_store.column s a and cf = Column_store.column fresh a in
      Alcotest.(check bool)
        (Printf.sprintf "%s: codes of %s = fresh encode" msg a)
        true
        (Column_store.column_codes cm = Column_store.column_codes cf);
      Alcotest.(check bool)
        (Printf.sprintf "%s: dict of %s = fresh encode" msg a)
        true
        (Column_store.column_dict cm = Column_store.column_dict cf))
    (Table.schema t).Relation.attrs

let test_delete_compaction () =
  Ooc.with_config ~segment_rows:8 (fun () ->
      let attrs = [ "a"; "b"; "c" ] in
      let t = table "R" attrs (mod_rows 50) in
      let s = Column_store.of_table t in
      Column_store.ensure_columns s attrs;
      (* tail-only delete (rows 48,49 sit past the 6th sealed segment):
         counts stay exact through the tail liveness fallback *)
      Table.delete_rows t [ 48; 49 ];
      (match Column_store.refresh ~delta_fraction:1.0 t with
      | Some (Column_store.Store_absorbed 2) -> ()
      | _ -> Alcotest.fail "expected a 2-row absorb");
      Alcotest.(check int) "distinct a after tail delete" 13
        (Column_store.count_distinct s [ "a" ]);
      Alcotest.(check int) "distinct c after tail delete" 48
        (Column_store.count_distinct s [ "c" ]);
      (* the next append reclaims dead tail codes: the store is now
         exactly a fresh encode of the surviving rows *)
      Table.insert t [ vi 99; vs "s99"; vi 999 ];
      (match Column_store.refresh ~delta_fraction:1.0 t with
      | Some (Column_store.Store_absorbed 1) -> ()
      | _ -> Alcotest.fail "expected a 1-row absorb");
      check_equals_fresh_encode "after tail reclaim" t s;
      (* deep delete (row 0 lives in the first sealed segment): full
         recompaction, again identical to a fresh encode *)
      Table.delete_rows t [ 0; 20; 40 ];
      (match Column_store.refresh ~delta_fraction:1.0 t with
      | Some (Column_store.Store_absorbed 3) -> ()
      | _ -> Alcotest.fail "expected a 3-row absorb");
      check_equals_fresh_encode "after deep compaction" t s;
      Alcotest.(check int) "distinct c after deep delete" 46
        (Column_store.count_distinct s [ "c" ]))

(* fuzzed mutation bursts: after any mix of appends and deletes, the
   delta-maintained segmented store matches a fresh encode *)
let test_fuzzed_mutations () =
  reset_lcg ();
  Ooc.with_config ~segment_rows:8 (fun () ->
      for round = 1 to 25 do
        let attrs = [ "a"; "b" ] in
        let n = 10 + rand 40 in
        let t =
          table "R" attrs
            (List.init n (fun _ ->
                 [ vi (rand 9); vs (Printf.sprintf "s%d" (rand 6)) ]))
        in
        let s = Column_store.of_table t in
        Column_store.ensure_columns s attrs;
        ignore (Column_store.count_distinct s [ "a" ]);
        for _ = 1 to 4 do
          (match rand 3 with
          | 0 ->
              Table.insert_many t
                (List.init (1 + rand 3) (fun _ ->
                     [ vi (rand 9); vs (Printf.sprintf "s%d" (rand 6)) ]))
          | 1 ->
              let m = Table.cardinality t in
              if m > 2 then
                Table.delete_rows t
                  (List.sort_uniq compare [ rand m; rand m ])
          | _ -> Table.insert t [ vi (rand 20); vs "fresh" ]);
          ignore (Column_store.refresh ~delta_fraction:1.0 t)
        done;
        check_equals_fresh_encode (Printf.sprintf "round %d" round) t s;
        (* verdicts over the mutated store match the naive engine *)
        let f = fd "R" [ "a" ] [ "b" ] in
        Alcotest.(check bool)
          (Printf.sprintf "round %d: fd verdict" round)
          (Deps.Fd_infer.holds ~engine:Engine.naive t f)
          (Deps.Fd_infer.holds ~engine:Engine.columnar t f)
      done)

(* -- full pipeline under a spill budget ------------------------------- *)

let artifacts_exn config db input =
  match Pipeline.run_checked ~config db input with
  | Ok r -> Dbre.Report.artifacts r
  | Error p ->
      Alcotest.failf "pipeline failed: %s" (Error.to_string p.Pipeline.p_error)

let test_pipeline_spilled_identity () =
  let spec =
    {
      Gen.default_spec with
      Gen.seed = 77L;
      rows_per_entity = 60;
      rows_per_denorm = 120;
    }
  in
  let run () =
    let g = Gen.generate spec in
    artifacts_exn
      { Pipeline.default_config with Pipeline.engine = Engine.columnar }
      g.Gen.db
      (Job_spec.Equijoins g.Gen.equijoins)
  in
  let in_ram = run () in
  let dir = fresh_spill_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let spilled =
    Ooc.with_config ~spill_dir:dir ~resident_budget_words:512 ~segment_rows:16
      (fun () ->
        Ooc.reset_stats ();
        run ())
  in
  Alcotest.(check bool) "the spilled run actually spilled" true
    ((Ooc.stats ()).Ooc.spill_writes > 0);
  Alcotest.(check (list (pair string string)))
    "artifacts byte-identical across the spill threshold" in_ram spilled

let suite =
  [
    Alcotest.test_case "segment boundaries: builder = reference" `Quick
      test_boundary_equivalence;
    Alcotest.test_case "16/32-bit dictionaries" `Quick test_wide_dictionaries;
    Alcotest.test_case "spill -> mmap round-trip" `Quick test_spill_roundtrip;
    Alcotest.test_case "zone maps skip isolated-key segments" `Quick
      test_zone_pruning_skips;
    Alcotest.test_case "pruned verdicts = unpruned (fuzzed)" `Quick
      test_zone_pruning_equivalence;
    Alcotest.test_case "IND disjoint-range short-circuit" `Quick
      test_ind_short_circuit;
    Alcotest.test_case "delete compaction = fresh encode" `Quick
      test_delete_compaction;
    Alcotest.test_case "fuzzed mutations = fresh encode" `Quick
      test_fuzzed_mutations;
    Alcotest.test_case "pipeline artifacts identical across spill" `Quick
      test_pipeline_spilled_identity;
  ]
