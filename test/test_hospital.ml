(* Golden tests for the hospital scenario: composite identifiers,
   multi-attribute INDs, forced NEI, and the Treatment m:n relationship. *)

open Relational
open Helpers
open Deps
open Dbre

let run () =
  let s = Workload.Scenarios.hospital in
  let db = s.Workload.Scenarios.database () in
  let config =
    {
      Pipeline.default_config with
      Pipeline.oracle = s.Workload.Scenarios.oracle ();
    }
  in
  Pipeline.run ~config db (Job_spec.Programs s.Workload.Scenarios.programs)

let result = lazy (run ())

let test_multi_attribute_inds () =
  let r = Lazy.force result in
  let inds = r.Pipeline.ind_result.Ind_discovery.inds in
  Alcotest.(check bool) "composite patient IND" true
    (List.exists
       (Ind.equal
          (ind
             ("Admission", [ "hosp_code"; "pat_no" ])
             ("Patient", [ "hosp_code"; "pat_no" ])))
       inds);
  Alcotest.(check bool) "three-attribute IND" true
    (List.exists
       (Ind.equal
          (ind
             ("Treatment", [ "adm_date"; "hosp_code"; "pat_no" ])
             ("Admission", [ "adm_date"; "hosp_code"; "pat_no" ])))
       inds);
  (* proper subset: only one direction for Admission/Patient *)
  Alcotest.(check bool) "no reverse patient IND" false
    (List.exists
       (Ind.equal
          (ind
             ("Patient", [ "hosp_code"; "pat_no" ])
             ("Admission", [ "hosp_code"; "pat_no" ])))
       inds)

let test_forced_nei () =
  let r = Lazy.force result in
  Alcotest.(check bool) "forced Treatment << Formulary" true
    (List.exists
       (Ind.equal (ind ("Treatment", [ "drug_code" ]) ("Formulary", [ "drug_code" ])))
       r.Pipeline.ind_result.Ind_discovery.inds);
  (* the force came from an NEI decision, not from inclusion *)
  Alcotest.(check bool) "recorded as a forced NEI" true
    (List.exists
       (function
         | Oracle.Nei_decided (_, Oracle.Force_right_in_left) -> true
         | _ -> false)
       r.Pipeline.events)

let test_fds () =
  let r = Lazy.force result in
  check_sorted_fds "two FDs"
    [
      fd "Staff" [ "ward_code" ] [ "ward_name" ];
      fd "Treatment" [ "drug_code" ] [ "drug_name" ];
    ]
    r.Pipeline.rhs_result.Rhs_discovery.fds

let test_eer_shape () =
  let r = Lazy.force result in
  let eer = r.Pipeline.translate_result.Translate.eer in
  (* Admission: weak entity of Patient, discriminated by adm_date *)
  (match Er.Eer.find_entity eer "Admission" with
  | Some e ->
      Alcotest.(check (option string)) "weak of Patient" (Some "Patient")
        e.Er.Eer.e_weak_of;
      Alcotest.(check (list string)) "discriminator" [ "adm_date" ] e.Er.Eer.e_key
  | None -> Alcotest.fail "Admission entity missing");
  (* Treatment: m:n relationship Admission -- Drug carrying dose *)
  (match Er.Eer.find_relationship eer "Treatment" with
  | Some rel ->
      Alcotest.(check (list string)) "roles"
        [ "Admission"; "Drug" ]
        (sorted_strings
           (List.map (fun (ro : Er.Eer.role) -> ro.Er.Eer.role_entity) rel.Er.Eer.r_roles));
      Alcotest.(check (list string)) "dose attribute" [ "dose" ] rel.Er.Eer.r_attrs;
      Alcotest.(check bool) "both legs Many" true
        (List.for_all
           (fun (ro : Er.Eer.role) -> ro.Er.Eer.role_card = Some Er.Eer.Many)
           rel.Er.Eer.r_roles)
  | None -> Alcotest.fail "Treatment relationship missing");
  (* Drug is-a Formulary from the forced IND *)
  Alcotest.(check bool) "Drug is-a Formulary" true
    (List.exists
       (fun (l : Er.Eer.isa) ->
         l.Er.Eer.isa_sub = "Drug" && l.Er.Eer.isa_super = "Formulary")
       eer.Er.Eer.isas);
  Alcotest.(check (result unit (list string))) "validates" (Ok ())
    (Er.Validate.check eer)

let test_3nf_and_constraints () =
  let r = Lazy.force result in
  List.iter
    (fun (name, nf) ->
      Alcotest.(check bool)
        (name ^ " >= 3NF")
        true
        (match nf with
        | Normal_forms.Nf3 | Normal_forms.Bcnf -> true
        | Normal_forms.Nf1 | Normal_forms.Nf2 -> false))
    (Pipeline.nf_report r);
  match r.Pipeline.restruct_result.Restruct.database with
  | Some db ->
      (* the Drug << Formulary constraint was FORCED by the expert against
         dirty data: the paper itself warns that "the obtained data
         structure no longer matches the database extension" — every other
         RIC must hold *)
      let forced = ind ("Drug", [ "drug_code" ]) ("Formulary", [ "drug_code" ]) in
      List.iter
        (fun i ->
          let expected = not (Ind.equal i forced) in
          Alcotest.(check bool) (Ind.to_string i) expected (Ind.satisfied db i))
        r.Pipeline.restruct_result.Restruct.ric
  | None -> Alcotest.fail "expected migrated database"

let test_migration_roundtrip () =
  let s = Workload.Scenarios.hospital in
  let db = s.Workload.Scenarios.database () in
  let original = Database.schema db in
  let config =
    {
      Pipeline.default_config with
      Pipeline.oracle = s.Workload.Scenarios.oracle ();
    }
  in
  let r = Pipeline.run ~config db (Job_spec.Programs s.Workload.Scenarios.programs) in
  let sql = Migration.script ~original r in
  let fresh = s.Workload.Scenarios.database () in
  Sqlx.Exec.exec_script fresh sql;
  let expected = Option.get r.Pipeline.restruct_result.Restruct.database in
  List.iter
    (fun rel ->
      let name = rel.Relation.name in
      let sort t = List.sort compare (Table.to_lists (Database.table t name)) in
      Alcotest.(check bool) (name ^ " rows equal") true (sort fresh = sort expected))
    (Schema.relations (Database.schema expected))

let suite =
  [
    Alcotest.test_case "multi-attribute INDs" `Quick test_multi_attribute_inds;
    Alcotest.test_case "forced NEI" `Quick test_forced_nei;
    Alcotest.test_case "elicited FDs" `Quick test_fds;
    Alcotest.test_case "EER shape" `Quick test_eer_shape;
    Alcotest.test_case "3NF and constraints" `Quick test_3nf_and_constraints;
    Alcotest.test_case "migration roundtrip" `Quick test_migration_roundtrip;
  ]
