(* The forward mapping (EER → relational) and its round-trip against the
   paper's restructured schema: mapping the Figure 1 EER schema forward
   must reproduce the §7 relational schema (up to attribute order). *)

open Relational
open Helpers
open Er

let entity ?(attrs = []) ?(key = []) ?weak_of name =
  { Eer.e_name = name; e_attrs = attrs; e_key = key; e_weak_of = weak_of }

let test_regular_entity () =
  let eer = Eer.add_entity Eer.empty (entity ~key:[ "id" ] ~attrs:[ "v" ] "E") in
  let r = To_relational.map eer in
  let rel = Schema.find_exn r.To_relational.schema "E" in
  Alcotest.(check (list string)) "attrs" [ "id"; "v" ] rel.Relation.attrs;
  Alcotest.(check bool) "key" true (Relation.is_key rel [ "id" ]);
  Alcotest.(check int) "no refs" 0 (List.length r.To_relational.refs)

let test_weak_entity_borrows_key () =
  let eer =
    Eer.empty
    |> Fun.flip Eer.add_entity (entity ~key:[ "no" ] "Owner")
    |> Fun.flip Eer.add_entity
         (entity ~key:[ "date" ] ~attrs:[ "v" ] ~weak_of:"Owner" "Weak")
  in
  let r = To_relational.map eer in
  let rel = Schema.find_exn r.To_relational.schema "Weak" in
  Alcotest.(check bool) "borrowed composite key" true
    (Relation.is_key rel [ "date"; "no" ]);
  match r.To_relational.refs with
  | [ ("Weak", [ "no" ], "Owner", [ "no" ]) ] -> ()
  | _ -> Alcotest.fail "expected one owner reference"

let test_isa_reference () =
  let eer =
    Eer.empty
    |> Fun.flip Eer.add_entity (entity ~key:[ "id" ] "Super")
    |> Fun.flip Eer.add_entity (entity ~key:[ "sid" ] "Sub")
    |> fun t -> Eer.add_isa t ~sub:"Sub" ~super:"Super"
  in
  let r = To_relational.map eer in
  match r.To_relational.refs with
  | [ ("Sub", [ "sid" ], "Super", [ "id" ]) ] -> ()
  | _ -> Alcotest.fail "expected one is-a reference"

let test_mn_junction () =
  let eer =
    Eer.empty
    |> Fun.flip Eer.add_entity (entity ~key:[ "a" ] "A")
    |> Fun.flip Eer.add_entity (entity ~key:[ "b" ] "B")
    |> Fun.flip Eer.add_relationship
         {
           Eer.r_name = "Link";
           r_roles =
             [ Eer.role ~card:Eer.Many "A" [ "a" ]; Eer.role ~card:Eer.Many "B" [ "b" ] ];
           r_attrs = [ "when" ];
         }
  in
  let r = To_relational.map eer in
  let rel = Schema.find_exn r.To_relational.schema "Link" in
  Alcotest.(check (list string)) "attrs" [ "a"; "b"; "when" ] rel.Relation.attrs;
  Alcotest.(check bool) "key is role union" true (Relation.is_key rel [ "a"; "b" ]);
  Alcotest.(check int) "two refs" 2 (List.length r.To_relational.refs)

let test_one_leg_folded () =
  let eer =
    Eer.empty
    |> Fun.flip Eer.add_entity (entity ~key:[ "d" ] ~attrs:[ "loc" ] "Dept")
    |> Fun.flip Eer.add_entity (entity ~key:[ "m" ] "Mgr")
    |> Fun.flip Eer.add_relationship
         {
           Eer.r_name = "manages";
           r_roles =
             [ Eer.role ~card:Eer.One "Dept" [ "mgr_id" ]; Eer.role ~card:Eer.Many "Mgr" [ "m" ] ];
           r_attrs = [];
         }
  in
  let r = To_relational.map eer in
  Alcotest.(check bool) "no junction relation" false
    (Schema.mem r.To_relational.schema "manages");
  let dept = Schema.find_exn r.To_relational.schema "Dept" in
  Alcotest.(check (list string)) "fk folded into Dept" [ "d"; "loc"; "mgr_id" ]
    dept.Relation.attrs;
  match r.To_relational.refs with
  | [ ("Dept", [ "mgr_id" ], "Mgr", [ "m" ]) ] -> ()
  | _ -> Alcotest.fail "expected folded reference"

let test_rejects_invalid () =
  let bad = Eer.add_entity Eer.empty (entity "NoKey") in
  try
    ignore (To_relational.map bad);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ---------- the round-trip on the paper example ---------- *)

let test_paper_roundtrip () =
  let result = Workload.Paper_example.run () in
  let restructured = result.Dbre.Pipeline.restruct_result.Dbre.Restruct.schema in
  let forward =
    To_relational.map result.Dbre.Pipeline.translate_result.Dbre.Translate.eer
  in
  (* same relations *)
  Alcotest.(check (list string)) "same relation names"
    (sorted_strings
       (List.map (fun r -> r.Relation.name) (Schema.relations restructured)))
    (sorted_strings
       (List.map (fun r -> r.Relation.name)
          (Schema.relations forward.To_relational.schema)));
  (* same attribute sets and keys, relation by relation *)
  List.iter
    (fun rel ->
      let name = rel.Relation.name in
      let fwd = Schema.find_exn forward.To_relational.schema name in
      Alcotest.(check names)
        (name ^ ": attribute set")
        (Relational.Attribute.Names.normalize rel.Relation.attrs)
        (Relational.Attribute.Names.normalize fwd.Relation.attrs);
      match rel.Relation.uniques with
      | key :: _ ->
          Alcotest.(check bool) (name ^ ": key preserved") true
            (Relation.is_key fwd key)
      | [] -> ())
    (Schema.relations restructured);
  (* the forward references are exactly the RICs *)
  let normalize_ref (r, a, t, ta) =
    (r, Relational.Attribute.Names.normalize a, t, Relational.Attribute.Names.normalize ta)
  in
  let forward_refs =
    List.sort_uniq compare (List.map normalize_ref forward.To_relational.refs)
  in
  let rics =
    List.sort_uniq compare
      (List.map
         (fun (i : Deps.Ind.t) ->
           normalize_ref (i.Deps.Ind.lhs_rel, i.Deps.Ind.lhs_attrs, i.Deps.Ind.rhs_rel, i.Deps.Ind.rhs_attrs))
         result.Dbre.Pipeline.restruct_result.Dbre.Restruct.ric)
  in
  Alcotest.(check int) "same number of references" (List.length rics)
    (List.length forward_refs);
  Alcotest.(check bool) "same references" true (forward_refs = rics)

let test_hospital_roundtrip_names () =
  let s = Workload.Scenarios.hospital in
  let db = s.Workload.Scenarios.database () in
  let config =
    {
      Dbre.Pipeline.default_config with
      Dbre.Pipeline.oracle = s.Workload.Scenarios.oracle ();
    }
  in
  let result =
    Dbre.Pipeline.run ~config db (Dbre.Job_spec.Programs s.Workload.Scenarios.programs)
  in
  let restructured = result.Dbre.Pipeline.restruct_result.Dbre.Restruct.schema in
  let forward =
    To_relational.map result.Dbre.Pipeline.translate_result.Dbre.Translate.eer
  in
  Alcotest.(check (list string)) "hospital: same relation names"
    (sorted_strings
       (List.map (fun r -> r.Relation.name) (Schema.relations restructured)))
    (sorted_strings
       (List.map (fun r -> r.Relation.name)
          (Schema.relations forward.To_relational.schema)))

let suite =
  [
    Alcotest.test_case "regular entity" `Quick test_regular_entity;
    Alcotest.test_case "weak entity" `Quick test_weak_entity_borrows_key;
    Alcotest.test_case "is-a reference" `Quick test_isa_reference;
    Alcotest.test_case "m:n junction" `Quick test_mn_junction;
    Alcotest.test_case "one-leg folding" `Quick test_one_leg_folded;
    Alcotest.test_case "rejects invalid EER" `Quick test_rejects_invalid;
    Alcotest.test_case "paper round-trip" `Quick test_paper_roundtrip;
    Alcotest.test_case "hospital round-trip (names)" `Quick test_hospital_roundtrip_names;
  ]
