open Relational
open Helpers

let db () =
  database
    [
      ( Relation.make ~uniques:[ [ "id" ] ] "R" [ "id"; "v" ],
        [ [ vi 1; vs "a" ]; [ vi 2; vs "b" ]; [ vi 3; vs "a" ] ] );
      ( Relation.make ~uniques:[ [ "k" ] ] "S" [ "k"; "w" ],
        [ [ vi 2; vs "x" ]; [ vi 3; vs "y" ]; [ vi 4; vs "z" ] ] );
    ]

let rows e = (Algebra.eval (db ()) e).Algebra.rows
let cols e = (Algebra.eval (db ()) e).Algebra.cols

let test_rel_project () =
  Alcotest.(check int) "base rows" 3 (List.length (rows (Algebra.Rel "R")));
  let p = Algebra.Project ([ "v" ], Algebra.Rel "R") in
  Alcotest.(check (list string)) "cols" [ "v" ] (cols p);
  Alcotest.(check int) "bag semantics keeps dups" 3 (List.length (rows p));
  Alcotest.(check int) "distinct" 2
    (List.length (rows (Algebra.Distinct p)))

let test_select () =
  let e =
    Algebra.Select
      ( Algebra.Cmp (Algebra.Eq, Algebra.Col "v", Algebra.Const (vs "a")),
        Algebra.Rel "R" )
  in
  Alcotest.(check int) "matching rows" 2 (List.length (rows e));
  let gt =
    Algebra.Select
      ( Algebra.Cmp (Algebra.Gt, Algebra.Col "id", Algebra.Const (vi 1)),
        Algebra.Rel "R" )
  in
  Alcotest.(check int) "gt" 2 (List.length (rows gt))

let test_null_comparisons () =
  let dbn =
    database
      [ (Relation.make "N" [ "a" ], [ [ vnull ]; [ vi 1 ] ]) ]
  in
  let eval e = (Algebra.eval dbn e).Algebra.rows in
  let eq_null =
    Algebra.Select
      ( Algebra.Cmp (Algebra.Eq, Algebra.Col "a", Algebra.Const vnull),
        Algebra.Rel "N" )
  in
  Alcotest.(check int) "= NULL never matches" 0 (List.length (eval eq_null));
  let is_null = Algebra.Select (Algebra.Is_null (Algebra.Col "a"), Algebra.Rel "N") in
  Alcotest.(check int) "IS NULL matches" 1 (List.length (eval is_null))

let test_equijoin () =
  let j = Algebra.Equijoin ([ ("id", "k") ], Algebra.Rel "R", Algebra.Rel "S") in
  Alcotest.(check (list string)) "right join col dropped" [ "id"; "v"; "w" ] (cols j);
  Alcotest.(check int) "matches" 2 (List.length (rows j))

let test_product_clash () =
  Alcotest.(check int) "product size" 9
    (List.length (rows (Algebra.Product (Algebra.Rel "R", Algebra.Rel "S"))));
  ignore
    (Helpers.expect_error "self product clashes" Error.Invariant (fun () ->
         rows (Algebra.Product (Algebra.Rel "R", Algebra.Rel "R"))));
  (* rename resolves the clash *)
  let renamed =
    Algebra.Product
      ( Algebra.Rel "R",
        Algebra.Rename ([ ("id", "id2"); ("v", "v2") ], Algebra.Rel "R") )
  in
  Alcotest.(check int) "self product via rename" 9 (List.length (rows renamed))

let test_set_ops () =
  let p1 = Algebra.Project ([ "id" ], Algebra.Rel "R") in
  let p2 = Algebra.Project ([ "k" ], Algebra.Rel "S") in
  Alcotest.(check int) "inter" 2 (List.length (rows (Algebra.Inter (p1, p2))));
  Alcotest.(check int) "union" 4 (List.length (rows (Algebra.Union (p1, p2))));
  Alcotest.(check int) "diff" 1 (List.length (rows (Algebra.Diff (p1, p2))));
  ignore
    (Helpers.expect_error "set-op arity mismatch" Error.Invariant (fun () ->
         rows (Algebra.Inter (Algebra.Rel "R", p2))))

let test_unknown () =
  let e =
    Helpers.expect_error "unknown relation" Error.Unknown_relation (fun () ->
        rows (Algebra.Rel "Ghost"))
  in
  Alcotest.(check (option string)) "names the relation" (Some "Ghost")
    e.Error.relation;
  let e =
    Helpers.expect_error "unknown column" Error.Unknown_column (fun () ->
        rows (Algebra.Project ([ "ghost" ], Algebra.Rel "R")))
  in
  Alcotest.(check (option string)) "names the column" (Some "ghost")
    e.Error.attribute

let test_join_null_semantics () =
  let dbn =
    database
      [
        (Relation.make "A" [ "x" ], [ [ vnull ]; [ vi 1 ] ]);
        (Relation.make "B" [ "y" ], [ [ vnull ]; [ vi 1 ] ]);
      ]
  in
  let j = Algebra.Equijoin ([ ("x", "y") ], Algebra.Rel "A", Algebra.Rel "B") in
  Alcotest.(check int) "null never joins" 1
    (List.length (Algebra.eval dbn j).Algebra.rows)

let suite =
  [
    Alcotest.test_case "rel, project, distinct" `Quick test_rel_project;
    Alcotest.test_case "select" `Quick test_select;
    Alcotest.test_case "null comparisons" `Quick test_null_comparisons;
    Alcotest.test_case "equijoin" `Quick test_equijoin;
    Alcotest.test_case "product and clash" `Quick test_product_clash;
    Alcotest.test_case "set operations" `Quick test_set_ops;
    Alcotest.test_case "unknown names" `Quick test_unknown;
    Alcotest.test_case "join null semantics" `Quick test_join_null_semantics;
  ]
