open Relational
open Helpers
open Deps
open Workload

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let draw seed = List.init 20 (fun _ -> Rng.int (Rng.create seed) 1000) in
  Alcotest.(check (list int)) "same seed same stream" (draw 7L) (draw 7L);
  Alcotest.(check bool) "different seeds differ" true (draw 7L <> draw 8L)

let test_rng_bounds () =
  let rng = Rng.create 1L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 100 do
    let v = Rng.int_in rng 5 7 in
    Alcotest.(check bool) "inclusive range" true (v >= 5 && v <= 7)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_split () =
  let a = Rng.create 42L in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int a 1000) in
  let ys = List.init 10 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "independent streams" true (xs <> ys)

let test_rng_sample_shuffle () =
  let rng = Rng.create 3L in
  let l = [ 1; 2; 3; 4; 5 ] in
  let s = Rng.shuffle rng l in
  Alcotest.(check (list int)) "permutation" l (List.sort compare s);
  let smp = Rng.sample rng 3 l in
  Alcotest.(check int) "sample size" 3 (List.length smp);
  Alcotest.(check int) "distinct" 3
    (List.length (List.sort_uniq compare smp));
  Alcotest.(check (list int)) "oversample returns all" l
    (List.sort compare (Rng.sample rng 99 l))

let test_rng_chance () =
  let rng = Rng.create 5L in
  let hits = ref 0 in
  for _ = 1 to 1000 do
    if Rng.chance rng 0.3 then incr hits
  done;
  Alcotest.(check bool) "roughly 30%" true (!hits > 200 && !hits < 400)

(* ---------- Gen_schema ---------- *)

let test_generate_deterministic () =
  let spec = Gen_schema.default_spec in
  let g1 = Gen_schema.generate spec and g2 = Gen_schema.generate spec in
  Alcotest.(check int) "same tuple count"
    (Database.total_tuples g1.Gen_schema.db)
    (Database.total_tuples g2.Gen_schema.db);
  check_sorted_inds "same truth"
    g1.Gen_schema.truth.Gen_schema.planted_inds
    g2.Gen_schema.truth.Gen_schema.planted_inds

let test_planted_deps_hold () =
  let g = Gen_schema.generate { Gen_schema.default_spec with Gen_schema.rows_per_entity = 200; rows_per_denorm = 400 } in
  List.iter
    (fun i ->
      Alcotest.(check bool) (Ind.to_string i ^ " holds") true
        (Ind.satisfied g.Gen_schema.db i))
    g.Gen_schema.truth.Gen_schema.planted_inds;
  List.iter
    (fun (f : Fd.t) ->
      Alcotest.(check bool) (Fd.to_string f ^ " holds") true
        (Fd.satisfied_by (Database.table g.Gen_schema.db f.Fd.rel) f))
    g.Gen_schema.truth.Gen_schema.planted_fds

let test_generated_constraints_hold () =
  let g = Gen_schema.generate Gen_schema.default_spec in
  Alcotest.(check bool) "dictionary constraints" true
    (Result.is_ok (Database.check_constraints g.Gen_schema.db))

let test_programs_parse () =
  let g = Gen_schema.generate Gen_schema.default_spec in
  let e = Sqlx.Embedded.scan_files g.Gen_schema.programs in
  Alcotest.(check int) "every program parses"
    (List.length g.Gen_schema.programs)
    (List.length e.Sqlx.Embedded.statements)

(* ---------- Corrupt ---------- *)

let test_break_ind () =
  let g = Gen_schema.generate Gen_schema.default_spec in
  let db = g.Gen_schema.db in
  let target = List.hd g.Gen_schema.truth.Gen_schema.planted_inds in
  let rng = Rng.create 9L in
  let n =
    Corrupt.break_ind rng db ~rel:target.Ind.lhs_rel
      ~attr:(List.hd target.Ind.lhs_attrs) ~rate:0.2
  in
  Alcotest.(check bool) "some cells corrupted" true (n > 0);
  Alcotest.(check bool) "ind now broken" false (Ind.satisfied db target);
  (* but it is an NEI, not empty: most values still overlap *)
  let c = Ind.counts db target in
  Alcotest.(check bool) "still overlapping" true (c.Ind.n_join > 0)

let test_break_fd () =
  let g = Gen_schema.generate Gen_schema.default_spec in
  let db = g.Gen_schema.db in
  let target = List.hd g.Gen_schema.truth.Gen_schema.planted_fds in
  let rhs_attr = List.hd target.Fd.rhs in
  let rng = Rng.create 9L in
  let n =
    Corrupt.break_fd rng db ~rel:target.Fd.rel ~lhs:target.Fd.lhs
      ~rhs:rhs_attr ~rate:0.3
  in
  Alcotest.(check bool) "rows touched" true (n > 0);
  Alcotest.(check bool) "fd broken" false
    (Fd.satisfied_by (Database.table db target.Fd.rel)
       (Deps.Fd.make target.Fd.rel target.Fd.lhs [ rhs_attr ]))

let test_delete_rows () =
  let g = Gen_schema.generate Gen_schema.default_spec in
  let db = g.Gen_schema.db in
  let before = Database.cardinality db "E0" in
  let n = Corrupt.delete_rows (Rng.create 1L) db ~rel:"E0" ~rate:0.5 in
  Alcotest.(check int) "accounting" before (n + Database.cardinality db "E0");
  Alcotest.(check bool) "some dropped" true (n > 0)

let test_corruption_to_nei_pipeline () =
  (* corrupting an IND turns the §6.1 case into an NEI the threshold
     expert can still force *)
  let g = Gen_schema.generate Gen_schema.default_spec in
  let db = g.Gen_schema.db in
  let target = List.hd g.Gen_schema.truth.Gen_schema.planted_inds in
  ignore
    (Corrupt.break_ind (Rng.create 11L) db ~rel:target.Ind.lhs_rel
       ~attr:(List.hd target.Ind.lhs_attrs) ~rate:0.05);
  let config =
    {
      Dbre.Pipeline.default_config with
      Dbre.Pipeline.oracle = Dbre.Oracle.threshold ~nei_ratio:0.5;
    }
  in
  let r =
    Dbre.Pipeline.run ~config db (Dbre.Job_spec.Equijoins g.Gen_schema.equijoins)
  in
  Alcotest.(check bool) "forced IND recovered despite corruption" true
    (List.exists (Ind.equal target) r.Dbre.Pipeline.ind_result.Dbre.Ind_discovery.inds)

let test_payloadless_refs_become_hidden_objects () =
  (* refs with no embedded payload have no FD to elicit: with the
     automatic expert they become hidden objects and Restruct
     materializes them *)
  let spec =
    {
      Gen_schema.default_spec with
      Gen_schema.payload_per_ref = 0;
      n_entities = 2;
      n_denorm = 1;
      refs_per_denorm = 2;
      rows_per_entity = 100;
      rows_per_denorm = 200;
      null_ref_rate = 0.0;
    }
  in
  let g = Gen_schema.generate spec in
  Alcotest.(check int) "no planted FDs" 0
    (List.length g.Gen_schema.truth.Gen_schema.planted_fds);
  let r =
    Dbre.Pipeline.run g.Gen_schema.db
      (Dbre.Job_spec.Equijoins g.Gen_schema.equijoins)
  in
  Alcotest.(check int) "two hidden objects" 2
    (List.length r.Dbre.Pipeline.rhs_result.Dbre.Rhs_discovery.hidden);
  Alcotest.(check int) "schema grew by two relations"
    (Schema.size (Database.schema g.Gen_schema.db) + 2)
    (Schema.size r.Dbre.Pipeline.restruct_result.Dbre.Restruct.schema)

(* ---------- Scenarios ---------- *)

let test_scenarios_registry () =
  Alcotest.(check int) "three built-ins" 3 (List.length Scenarios.all);
  Alcotest.(check bool) "find paper" true (Scenarios.find "paper" <> None);
  Alcotest.(check bool) "find payroll" true (Scenarios.find "payroll" <> None);
  Alcotest.(check bool) "unknown" true (Scenarios.find "ghost" = None)

let test_paper_database_valid () =
  let db = Workload.Paper_example.database () in
  Alcotest.(check bool) "constraints hold" true
    (Result.is_ok (Database.check_constraints db));
  Alcotest.(check int) "2200 persons" 2200 (Database.cardinality db "Person");
  Alcotest.(check int) "1550 distinct employees" 1550
    (Database.count_distinct db "HEmployee" [ "no" ])

let test_payroll_database_valid () =
  let db = (Scenarios.payroll).Scenarios.database () in
  Alcotest.(check bool) "constraints hold" true
    (Result.is_ok (Database.check_constraints db))

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng split" `Quick test_rng_split;
    Alcotest.test_case "rng sample/shuffle" `Quick test_rng_sample_shuffle;
    Alcotest.test_case "rng chance" `Quick test_rng_chance;
    Alcotest.test_case "generation deterministic" `Quick test_generate_deterministic;
    Alcotest.test_case "planted deps hold" `Quick test_planted_deps_hold;
    Alcotest.test_case "generated constraints hold" `Quick test_generated_constraints_hold;
    Alcotest.test_case "programs parse" `Quick test_programs_parse;
    Alcotest.test_case "break ind" `Quick test_break_ind;
    Alcotest.test_case "break fd" `Quick test_break_fd;
    Alcotest.test_case "delete rows" `Quick test_delete_rows;
    Alcotest.test_case "corruption to NEI pipeline" `Quick test_corruption_to_nei_pipeline;
    Alcotest.test_case "payloadless refs become hidden objects" `Quick test_payloadless_refs_become_hidden_objects;
    Alcotest.test_case "scenario registry" `Quick test_scenarios_registry;
    Alcotest.test_case "paper database valid" `Quick test_paper_database_valid;
    Alcotest.test_case "payroll database valid" `Quick test_payroll_database_valid;
  ]
