(* The analysis daemon, driven in-process: concurrent submissions are
   byte-identical to local runs, cancel settles with a typed result,
   malformed frames get typed protocol errors, and a daemon restarted
   over its state dir resumes interrupted jobs from their checkpoints
   to the same bytes. *)

open Relational
module Job_spec = Dbre.Job_spec
module Server = Dbre_serve.Server
module Client = Dbre_serve.Client
module Protocol = Dbre_serve.Protocol

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

(* unix sockets live under a ~107-byte path limit: keep them short *)
let socket_counter = ref 0

let fresh_socket () =
  incr socket_counter;
  Printf.sprintf "/tmp/dbre_t%d_%d.sock" (Unix.getpid ()) !socket_counter

let with_server ?max_jobs ?state_dir f =
  let server = Server.create ?max_jobs ?state_dir ~socket:(fresh_socket ()) () in
  Server.start server;
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

let with_client server f =
  let c = Client.connect (Server.socket server) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* ------------------------------------------------------------------ *)
(* A small, fast job: two relations, one join, full six-stage run      *)
(* ------------------------------------------------------------------ *)

let ddl =
  "CREATE TABLE Emp (eid INT, dep VARCHAR(8), dname VARCHAR(16), PRIMARY KEY \
   (eid));\n\
   CREATE TABLE Dept (dep VARCHAR(8), dname VARCHAR(16), loc VARCHAR(8), \
   PRIMARY KEY (dep));"

let emp_csv ?(rows = 60) ~deps () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "eid,dep,dname\n";
  for i = 1 to rows do
    let d = i mod deps in
    Buffer.add_string b (Printf.sprintf "%d,d%d,dept-%d\n" i d d)
  done;
  Buffer.contents b

let dept_csv ~deps () =
  let b = Buffer.create 256 in
  Buffer.add_string b "dep,dname,loc\n";
  for d = 0 to deps - 1 do
    Buffer.add_string b (Printf.sprintf "d%d,dept-%d,loc-%d\n" d d d)
  done;
  Buffer.contents b

let script = "SELECT eid FROM Emp, Dept WHERE Emp.dep = Dept.dep"

let spec ?label ?(rows = 60) ?(deps = 4) ?engine ?fuel () =
  Job_spec.make ?label ?engine ?fuel
    ~sources:
      [
        ("Emp", Source.csv_inline (emp_csv ~rows ~deps ()));
        ("Dept", Source.csv_inline (dept_csv ~deps ()));
      ]
    ~ddl
    (Job_spec.Sql_scripts [ script ])

let local_artifacts spec =
  match Dbre.Job.run spec with
  | Ok result -> Dbre.Report.artifacts result
  | Error p ->
      Alcotest.failf "local run failed: %s"
        (Error.to_string p.Dbre.Pipeline.p_error)

let check_artifacts msg expected actual =
  Alcotest.(check (list (pair string string))) msg expected actual

let submit_exn client spec =
  match Client.submit client spec with
  | Ok (id, diags) -> (id, diags)
  | Error (code, msg) -> Alcotest.failf "submit: %s: %s" code msg

let wait_exn client id =
  match Client.wait client id with
  | Ok (state, artifacts) -> (state, artifacts)
  | Error (code, msg) -> Alcotest.failf "wait %s: %s: %s" id code msg

(* drain the whole event stream via watch until the job settles *)
let stream_events client id =
  let rec go since acc =
    match Client.watch client ~since id with
    | Error (code, msg) -> Alcotest.failf "watch %s: %s: %s" id code msg
    | Ok (evs, next, settled) ->
        let acc = acc @ evs in
        if settled then acc else go next acc
  in
  go 0 []

let kinds events =
  List.filter_map (fun ev -> Json.mem_string "kind" ev) events

(* ------------------------------------------------------------------ *)
(* Basics                                                              *)
(* ------------------------------------------------------------------ *)

let test_ping () =
  with_server @@ fun server ->
  with_client server @@ fun c ->
  Alcotest.(check bool) "pong" true (Client.ping c)

let test_one_job_byte_identical () =
  let s = spec ~label:"one" () in
  let expected = local_artifacts s in
  with_server @@ fun server ->
  with_client server @@ fun c ->
  let id, diags = submit_exn c s in
  Alcotest.(check string) "first id" "job-000001" id;
  Alcotest.(check int) "clean spec, no diagnostics" 0 (List.length diags);
  let state, artifacts = wait_exn c id in
  Alcotest.(check string) "done" "done" state;
  check_artifacts "byte-identical to the local run" expected artifacts

let test_event_stream_shape () =
  let s = spec ~label:"events" () in
  with_server @@ fun server ->
  with_client server @@ fun c ->
  let id, _ = submit_exn c s in
  let events = stream_events c id in
  let ks = kinds events in
  Alcotest.(check bool) "loading events for both relations" true
    (List.length (List.filter (( = ) "loading") ks) = 2
    && List.length (List.filter (( = ) "loaded") ks) = 2);
  let stage_phases =
    List.filter_map
      (fun ev ->
        match (Json.mem_string "kind" ev, Json.mem_string "phase" ev) with
        | Some "stage", Some p -> Some p
        | _ -> None)
      events
  in
  Alcotest.(check int) "six stages started" 6
    (List.length (List.filter (( = ) "started") stage_phases));
  Alcotest.(check int) "six stages finished" 6
    (List.length (List.filter (( = ) "finished") stage_phases));
  (match List.rev ks with
  | "settled" :: _ -> ()
  | _ -> Alcotest.fail "last event is not the settlement");
  (* the events op honors [since]: asking from the last sequence number
     returns exactly the settlement *)
  match Client.events c ~since:(List.length events - 1) id with
  | Ok ([ last ], _, true) ->
      Alcotest.(check (option string)) "tail event" (Some "settled")
        (Json.mem_string "kind" last)
  | Ok (evs, _, _) ->
      Alcotest.failf "expected 1 tail event, got %d" (List.length evs)
  | Error (code, msg) -> Alcotest.failf "events: %s: %s" code msg

let test_concurrent_jobs_byte_identical () =
  (* four different specs, submitted concurrently on four connections
     over two runner threads, must each match their own local run *)
  let specs =
    List.init 4 (fun i ->
        spec ~label:(Printf.sprintf "c%d" i) ~rows:(50 + (10 * i))
          ~deps:(3 + i) ())
  in
  let expected = List.map local_artifacts specs in
  with_server ~max_jobs:2 @@ fun server ->
  let results = Array.make 4 ("", []) in
  let threads =
    List.mapi
      (fun i s ->
        Thread.create
          (fun () ->
            with_client server @@ fun c ->
            let id, _ = submit_exn c s in
            results.(i) <- wait_exn c id)
          ())
      specs
  in
  List.iter Thread.join threads;
  List.iteri
    (fun i exp ->
      let state, artifacts = results.(i) in
      Alcotest.(check string) (Printf.sprintf "job %d done" i) "done" state;
      check_artifacts
        (Printf.sprintf "job %d byte-identical to its local run" i)
        exp artifacts)
    expected

(* ------------------------------------------------------------------ *)
(* Cancellation                                                        *)
(* ------------------------------------------------------------------ *)

let test_cancel_queued_job () =
  (* an accept-only daemon never runs the job: cancel settles it *)
  with_server ~max_jobs:0 @@ fun server ->
  with_client server @@ fun c ->
  let id, _ = submit_exn c (spec ~label:"parked" ()) in
  (match Client.status c id with
  | Ok st ->
      Alcotest.(check (option string)) "queued" (Some "queued")
        (Json.mem_string "state" st)
  | Error (code, msg) -> Alcotest.failf "status: %s: %s" code msg);
  (match Client.cancel c id with
  | Ok state -> Alcotest.(check string) "settled immediately" "cancelled" state
  | Error (code, msg) -> Alcotest.failf "cancel: %s: %s" code msg);
  match Client.artifacts c id with
  | Ok (artifacts, state) ->
      Alcotest.(check string) "cancelled" "cancelled" state;
      Alcotest.(check int) "no artifacts" 0 (List.length artifacts)
  | Error (code, msg) -> Alcotest.failf "artifacts: %s: %s" code msg

let test_cancel_running_job () =
  (* a big extension keeps the job in its load/discovery stages long
     enough to cancel it mid-run: the supervision token trips and the
     job settles as cancelled, not done *)
  let s = spec ~label:"doomed" ~rows:120_000 ~deps:40 () in
  with_server ~max_jobs:1 @@ fun server ->
  with_client server @@ fun c ->
  let id, _ = submit_exn c s in
  (* wait for the first event: the job is now running *)
  (match Client.watch c id with
  | Ok _ -> ()
  | Error (code, msg) -> Alcotest.failf "watch: %s: %s" code msg);
  (match Client.cancel c id with
  | Ok _ -> ()
  | Error (code, msg) -> Alcotest.failf "cancel: %s: %s" code msg);
  let state, _ = wait_exn c id in
  Alcotest.(check string) "settles as cancelled" "cancelled" state

let test_budget_trip_is_typed () =
  (* a fuel'd spec with a fail-on-exhausted budget trips mid-run: the
     daemon reports the typed resource-exhausted error over the wire *)
  let s =
    spec ~label:"tripped"
      ~engine:(Engine.with_budget ~on_exhausted:`Fail Engine.default)
      ~fuel:1 ()
  in
  with_server @@ fun server ->
  with_client server @@ fun c ->
  let id, _ = submit_exn c s in
  let rec wait_settled () =
    match Client.status c id with
    | Error (code, msg) -> Alcotest.failf "status: %s: %s" code msg
    | Ok st -> (
        match Json.mem_string "state" st with
        | Some ("queued" | "running") ->
            Thread.yield ();
            wait_settled ()
        | Some state -> (state, st)
        | None -> Alcotest.fail "status without state")
  in
  let state, st = wait_settled () in
  Alcotest.(check string) "failed" "failed" state;
  match Json.member "error" st with
  | Some err ->
      Alcotest.(check (option string)) "typed error code"
        (Some "resource-exhausted")
        (Json.mem_string "code" err)
  | None -> Alcotest.fail "failed status carries no error"

(* ------------------------------------------------------------------ *)
(* Protocol errors                                                     *)
(* ------------------------------------------------------------------ *)

let raw_connect server =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX (Server.socket server));
  fd

let send_raw fd payload =
  let len = String.length payload in
  let buf = Bytes.create (4 + len) in
  Bytes.set buf 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set buf 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set buf 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set buf 3 (Char.chr (len land 0xff));
  Bytes.blit_string payload 0 buf 4 len;
  ignore (Unix.write fd buf 0 (4 + len))

let response_code fd =
  match Protocol.error_of (Json.of_string (Protocol.read_frame fd)) with
  | Some (code, _) -> code
  | None -> "ok"

let test_malformed_frames () =
  with_server @@ fun server ->
  let fd = raw_connect server in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  (* not JSON: typed error, connection survives *)
  send_raw fd "this is not json";
  Alcotest.(check string) "bad-json" "bad-json" (response_code fd);
  (* JSON but not an object *)
  Protocol.write_frame fd (Json.List [ Json.Int 1 ]);
  Alcotest.(check string) "bad-request (non-object)" "bad-request"
    (response_code fd);
  (* an object with no op *)
  Protocol.write_frame fd (Json.Obj []);
  Alcotest.(check string) "bad-request (no op)" "bad-request"
    (response_code fd);
  (* unknown op *)
  Protocol.write_frame fd (Protocol.request "frobnicate" []);
  Alcotest.(check string) "unknown-op" "unknown-op" (response_code fd);
  (* unknown job *)
  Protocol.write_frame fd
    (Protocol.request "status" [ ("id", Json.String "job-999999") ]);
  Alcotest.(check string) "unknown-job" "unknown-job" (response_code fd);
  (* submit without a spec *)
  Protocol.write_frame fd (Protocol.request "submit" []);
  Alcotest.(check string) "bad-request (no spec)" "bad-request"
    (response_code fd);
  (* submit with an invalid spec *)
  Protocol.write_frame fd
    (Protocol.request "submit" [ ("spec", Json.Obj []) ]);
  Alcotest.(check string) "spec-invalid" "spec-invalid" (response_code fd);
  (* the connection survived all of the above *)
  Protocol.write_frame fd (Protocol.request "ping" []);
  Alcotest.(check string) "still alive" "ok" (response_code fd)

let test_oversize_frame_closes_connection () =
  with_server @@ fun server ->
  let fd = raw_connect server in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  (* announce a 32 MiB frame without sending it: refused and dropped *)
  let hdr = Bytes.of_string "\x02\x00\x00\x00" in
  ignore (Unix.write fd hdr 0 4);
  Alcotest.(check string) "bad-frame" "bad-frame" (response_code fd);
  match Protocol.read_frame fd with
  | exception Protocol.Closed -> ()
  | exception Protocol.Frame_error _ -> ()
  | _ -> Alcotest.fail "connection survived a broken frame boundary"

(* ------------------------------------------------------------------ *)
(* L207: sources vs. declared schema                                   *)
(* ------------------------------------------------------------------ *)

let test_l207_over_the_wire () =
  let bad =
    Job_spec.make ~label:"ghost"
      ~sources:[ ("Ghost", Source.csv_inline "a\n1\n") ]
      ~ddl (Job_spec.Sql_scripts [ script ])
  in
  with_server @@ fun server ->
  with_client server @@ fun c ->
  let id, diags = submit_exn c bad in
  Alcotest.(check bool) "submit response carries L207" true
    (List.exists (fun d -> Json.mem_string "code" d = Some "L207") diags);
  let events = stream_events c id in
  (* the diagnostic is the job's first event, before any run activity *)
  (match events with
  | first :: _ ->
      Alcotest.(check (option string)) "diagnostic first" (Some "diagnostic")
        (Json.mem_string "kind" first)
  | [] -> Alcotest.fail "no events at all");
  (* the run itself then fails with the typed load error *)
  match Client.artifacts c id with
  | Ok (_, state) -> Alcotest.(check string) "failed" "failed" state
  | Error (code, msg) -> Alcotest.failf "artifacts: %s: %s" code msg

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                      *)
(* ------------------------------------------------------------------ *)

let test_restart_runs_queued_job () =
  (* daemon A accepts but never runs (max_jobs = 0) and "crashes";
     daemon B over the same state dir picks the job up and finishes it
     byte-identically to a local run *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "dbre_restart_q" in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let s = spec ~label:"orphan" () in
  let expected = local_artifacts s in
  let id =
    with_server ~max_jobs:0 ~state_dir:dir @@ fun server ->
    with_client server @@ fun c -> fst (submit_exn c s)
  in
  with_server ~max_jobs:1 ~state_dir:dir @@ fun server ->
  with_client server @@ fun c ->
  let state, artifacts = wait_exn c id in
  Alcotest.(check string) "done after restart" "done" state;
  check_artifacts "byte-identical across the restart" expected artifacts;
  (* the adopted id is not reissued to the next submission *)
  let id2, _ = submit_exn c (spec ~label:"next" ()) in
  Alcotest.(check bool) "fresh id after adoption" true (id2 <> id)

(* find a fuel that interrupts the staging run after at least one
   stage completed (so checkpoints exist) but before it finished —
   deterministic, but robust to how often the pipeline polls *)
let staged_interrupted_run ~ckpt base =
  let rec search fuel =
    if fuel > 100_000 then
      Alcotest.fail "no fuel interrupts the run mid-pipeline"
    else begin
      rm_rf ckpt;
      mkdir_p ckpt;
      let s =
        {
          base with
          Job_spec.engine =
            Engine.with_budget ~on_exhausted:`Fail Engine.default;
          checkpoint_dir = Some ckpt;
          fuel = Some fuel;
        }
      in
      match Dbre.Job.run s with
      | Error p when p.Dbre.Pipeline.p_ind_result <> None -> ()
      | Error _ -> search (fuel + 1)  (* tripped before any checkpoint *)
      | Ok _ -> Alcotest.fail "fuel never tripped the staging run"
    end
  in
  search 1

let test_restart_resumes_from_checkpoints () =
  (* stage a state dir as a crashed daemon would leave it: the spec on
     disk, status "running", and the checkpoints of the stages the
     dead daemon had completed; the restarted daemon must re-adopt the
     job, restore those stages (visible in the event stream) and
     settle with the artifacts of an uninterrupted run *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "dbre_restart_r" in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let s = spec ~label:"lazarus" ~rows:200 ~deps:5 () in
  let expected = local_artifacts s in
  let id = "job-000041" in
  let jdir = Filename.concat dir id in
  let ckpt = Filename.concat jdir "ckpt" in
  mkdir_p jdir;
  staged_interrupted_run ~ckpt s;
  let write path contents =
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc contents)
  in
  (match Job_spec.to_string s with
  | Ok text -> write (Filename.concat jdir "spec.json") text
  | Error e -> Alcotest.fail e);
  write (Filename.concat jdir "status") "running";
  with_server ~max_jobs:1 ~state_dir:dir @@ fun server ->
  with_client server @@ fun c ->
  let events = stream_events c id in
  let restored =
    List.filter
      (fun ev ->
        Json.mem_string "kind" ev = Some "stage"
        && Json.mem_string "phase" ev = Some "restored")
      events
  in
  Alcotest.(check bool) "at least one stage restored from checkpoint" true
    (List.length restored > 0);
  let state, artifacts = wait_exn c id in
  Alcotest.(check string) "done after resume" "done" state;
  check_artifacts "resumed run byte-identical to an uninterrupted one"
    expected artifacts;
  let id2, _ = submit_exn c (spec ~label:"after" ()) in
  Alcotest.(check string) "id counter moved past the adopted job"
    "job-000042" id2

(* ------------------------------------------------------------------ *)
(* Mutation and delta refresh                                          *)
(* ------------------------------------------------------------------ *)

(* mutate a settled job's retained extension, refresh, and check the
   refreshed artifacts are byte-identical to running the same job over
   the mutated rows from scratch *)
let test_mutate_refresh_matches_resubmit () =
  with_server (fun server ->
      with_client server (fun c ->
          let id, _ = submit_exn c (spec ~rows:40 ()) in
          let state, _ = wait_exn c id in
          Alcotest.(check string) "settled" "done" state;
          (* delete the first employee, append two new ones *)
          let insert =
            [
              [ Value.Int 101; Value.String "d1"; Value.String "dept-1" ];
              [ Value.Int 102; Value.String "d2"; Value.String "dept-2" ];
            ]
          in
          (match Client.mutate c ~insert ~delete:[ 0 ] id "Emp" with
          | Ok (cardinality, _version) ->
              Alcotest.(check int) "cardinality after mutate" 41 cardinality
          | Error (code, msg) -> Alcotest.failf "mutate: %s: %s" code msg);
          (match Client.refresh c id with
          | Ok (_report, state) ->
              Alcotest.(check string) "settled after refresh" "done" state
          | Error (code, msg) -> Alcotest.failf "refresh: %s: %s" code msg);
          let refreshed =
            match Client.artifacts c id with
            | Ok (arts, _) -> arts
            | Error (code, msg) -> Alcotest.failf "artifacts: %s: %s" code msg
          in
          (* the same extension, loaded fresh: rows 2..40 plus the two
             appended employees *)
          let b = Buffer.create 1024 in
          Buffer.add_string b "eid,dep,dname\n";
          for i = 2 to 40 do
            let d = i mod 4 in
            Buffer.add_string b (Printf.sprintf "%d,d%d,dept-%d\n" i d d)
          done;
          Buffer.add_string b "101,d1,dept-1\n102,d2,dept-2\n";
          let mutated_spec =
            Job_spec.make
              ~sources:
                [
                  ("Emp", Source.csv_inline (Buffer.contents b));
                  ("Dept", Source.csv_inline (dept_csv ~deps:4 ()));
                ]
              ~ddl
              (Job_spec.Sql_scripts [ script ])
          in
          check_artifacts "refresh = resubmit over mutated rows"
            (local_artifacts mutated_spec)
            refreshed;
          (* status reports the refresh and the delta-cache counters *)
          (match Client.status c id with
          | Ok st ->
              Alcotest.(check (option int))
                "refresh count" (Some 1)
                (Json.mem_int "refreshes" st);
              Alcotest.(check bool) "delta stats present" true
                (Json.member "delta" st <> None)
          | Error (code, msg) -> Alcotest.failf "status: %s: %s" code msg);
          (* bad requests are typed and mutate nothing *)
          (match Client.mutate c ~delete:[ 0 ] id "Nope" with
          | Error ("unknown-relation", _) -> ()
          | Ok _ -> Alcotest.fail "mutate of unknown relation succeeded"
          | Error (code, msg) ->
              Alcotest.failf "unexpected error: %s: %s" code msg);
          match
            Client.mutate c ~insert:[ [ Value.Int 1 ] ] ~delete:[ 0 ] id "Emp"
          with
          | Error _ -> (
              match Client.mutate c id "Emp" with
              | Ok (cardinality, _) ->
                  Alcotest.(check int) "bad row mutated nothing" 41 cardinality
              | Error (code, msg) ->
                  Alcotest.failf "no-op mutate: %s: %s" code msg)
          | Ok _ -> Alcotest.fail "arity-mismatched insert succeeded"))

let suite =
  [
    Alcotest.test_case "ping" `Quick test_ping;
    Alcotest.test_case "one job is byte-identical to a local run" `Quick
      test_one_job_byte_identical;
    Alcotest.test_case "event stream shape" `Quick test_event_stream_shape;
    Alcotest.test_case "4 concurrent jobs byte-identical" `Quick
      test_concurrent_jobs_byte_identical;
    Alcotest.test_case "cancel a queued job" `Quick test_cancel_queued_job;
    Alcotest.test_case "cancel a running job" `Quick test_cancel_running_job;
    Alcotest.test_case "budget trip is typed over the wire" `Quick
      test_budget_trip_is_typed;
    Alcotest.test_case "malformed frames get typed errors" `Quick
      test_malformed_frames;
    Alcotest.test_case "oversize frame closes the connection" `Quick
      test_oversize_frame_closes_connection;
    Alcotest.test_case "L207 diagnostics over the wire" `Quick
      test_l207_over_the_wire;
    Alcotest.test_case "restart picks up a queued job" `Quick
      test_restart_runs_queued_job;
    Alcotest.test_case "restart resumes from checkpoints" `Quick
      test_restart_resumes_from_checkpoints;
    Alcotest.test_case "mutate + refresh is byte-identical to resubmit" `Quick
      test_mutate_refresh_matches_resubmit;
  ]
