(* Shared test utilities. *)

open Relational

let vi i = Value.Int i
let vs s = Value.String s
let vnull = Value.Null

(* build a table from attribute names and rows of values *)
let table ?uniques ?not_nulls name attrs rows =
  let rel = Relation.make ?uniques ?not_nulls name attrs in
  let t = Table.create rel in
  List.iter (Table.insert t) rows;
  t

(* build a database from (relation, rows) pairs *)
let database rels_rows =
  let schema = Schema.of_relations (List.map fst rels_rows) in
  let db = Database.create schema in
  List.iter
    (fun (rel, rows) ->
      List.iter (Database.insert db rel.Relation.name) rows)
    rels_rows;
  db

let fd = Deps.Fd.make
let ind l r = Deps.Ind.make l r

(* Alcotest testables *)
let value = Alcotest.testable Value.pp Value.equal
let relation = Alcotest.testable Relation.pp Relation.equal
let attr = Alcotest.testable Attribute.pp Attribute.equal

let fd_t = Alcotest.testable Deps.Fd.pp Deps.Fd.equal
let ind_t = Alcotest.testable Deps.Ind.pp Deps.Ind.equal
let equijoin_t = Alcotest.testable Sqlx.Equijoin.pp Sqlx.Equijoin.equal

let names =
  Alcotest.testable Attribute.Names.pp Attribute.Names.equal

let sorted_strings l = List.sort String.compare l

let check_sorted_inds msg expected actual =
  Alcotest.(check (list ind_t))
    msg
    (List.sort Deps.Ind.compare expected)
    (List.sort Deps.Ind.compare actual)

let check_sorted_fds msg expected actual =
  Alcotest.(check (list fd_t))
    msg
    (List.sort Deps.Fd.compare expected)
    (List.sort Deps.Fd.compare actual)

(* substring check for error-message assertions *)
let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_contains name ~sub s =
  if not (contains ~sub s) then
    Alcotest.failf "%s: expected %S within %S" name sub s

(* run [f], expecting a typed error with [code]; returns the error record
   so callers can inspect stage/relation/attribute/message *)
let expect_error name code f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Error.Error" name
  | exception Error.Error e ->
      Alcotest.(check string)
        (name ^ ": code")
        (Error.code_to_string code)
        (Error.code_to_string e.Error.code);
      e
