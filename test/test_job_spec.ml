(* Job_spec: the serializable run description shared by the one-shot
   CLI and the daemon's wire protocol. The JSON encoding is pinned by a
   golden string — version 1 is a compatibility promise, so any change
   here must bump [Job_spec.version]. *)

open Relational
module Job_spec = Dbre.Job_spec

let golden_spec () =
  Job_spec.make ~label:"golden"
    ~sources:[ ("R", Source.csv_inline "a,b\n1,x\n") ]
    ~engine:
      (Engine.make ~check:Engine.Partition ~cache:Engine.Cache_off
         ~parallelism:(Engine.Domains 3) ~deadline_s:2.5
         ~max_heap_words:1_000_000 ~on_exhausted:`Fail ())
    ~oracle:(Job_spec.Threshold 0.8) ~lenient:true ~migrate_data:false
    ~checkpoint_dir:"/tmp/ck" ~resume:true ~fuel:42
    ~ddl:"CREATE TABLE R (a INT, b VARCHAR(4));"
    (Job_spec.Equijoins [ Sqlx.Equijoin.make ("R", [ "a" ]) ("S", [ "a" ]) ])

let golden_json =
  String.concat ""
    [
      {|{"version":1,"label":"golden","ddl":"CREATE TABLE R (a INT, b VARCHAR(4));",|};
      {|"sources":[{"relation":"R","kind":"csv-inline","text":"a,b\n1,x\n"}],|};
      {|"workload":{"kind":"equijoins","joins":[{"rel1":"R","attrs1":["a"],"rel2":"S","attrs2":["a"]}]},|};
      {|"engine":{"check":"partition","cache":false,"domains":3,"deadline_s":2.5,"max_heap_words":1000000,"on_exhausted":"fail"},|};
      {|"oracle":"threshold:0.8","lenient":true,"migrate_data":false,|};
      {|"checkpoint_dir":"/tmp/ck","resume":true,"fuel":42}|};
    ]

let to_string_exn spec =
  match Job_spec.to_string spec with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let of_string_exn text =
  match Job_spec.of_string text with
  | Ok spec -> spec
  | Error e -> Alcotest.fail e

let test_golden () =
  Alcotest.(check string) "pinned v1 encoding" golden_json
    (to_string_exn (golden_spec ()))

let test_roundtrip () =
  let spec = golden_spec () in
  let reparsed = of_string_exn (to_string_exn spec) in
  (* re-serialization is the structural-equality oracle: sources carry
     closures-free constructors, so byte equality means field equality *)
  Alcotest.(check string) "fixpoint" (to_string_exn spec)
    (to_string_exn reparsed);
  Alcotest.(check (option string)) "label" spec.Job_spec.label
    reparsed.Job_spec.label;
  Alcotest.(check bool) "lenient" spec.Job_spec.lenient
    reparsed.Job_spec.lenient;
  Alcotest.(check bool) "engine" true
    (spec.Job_spec.engine = reparsed.Job_spec.engine);
  Alcotest.(check bool) "workload" true
    (spec.Job_spec.workload = reparsed.Job_spec.workload)

let test_defaults_roundtrip () =
  let spec = Job_spec.make ~ddl:"CREATE TABLE R (a INT);" (Job_spec.Programs []) in
  let reparsed = of_string_exn (to_string_exn spec) in
  Alcotest.(check string) "fixpoint" (to_string_exn spec)
    (to_string_exn reparsed);
  Alcotest.(check bool) "default engine survives" true
    (reparsed.Job_spec.engine = Engine.default)

let test_in_memory_travels_as_csv () =
  let rel =
    Relation.make
      ~domains:[ ("a", Domain.Int); ("b", Domain.String) ]
      "R" [ "a"; "b" ]
  in
  let table =
    match Csv.load rel "a,b\n1,x\n2,y\n" with
    | Ok (t, _) -> t
    | Error e -> Alcotest.fail (Error.to_string e)
  in
  let spec =
    Job_spec.make ~sources:[ ("R", Source.in_memory table) ]
      ~ddl:"CREATE TABLE R (a INT, b VARCHAR(4));" (Job_spec.Programs [])
  in
  let reparsed = of_string_exn (to_string_exn spec) in
  match reparsed.Job_spec.sources with
  | [ ("R", Source.Csv_inline text) ] ->
      let reloaded =
        match Csv.load rel text with
        | Ok (t, _) -> t
        | Error e -> Alcotest.fail (Error.to_string e)
      in
      Alcotest.(check string) "identical extension after the round trip"
        (Csv.dump_table table) (Csv.dump_table reloaded)
  | _ -> Alcotest.fail "in-memory source did not become csv-inline"

let test_reader_is_unserializable () =
  let spec =
    Job_spec.make
      ~sources:[ ("R", Source.reader ~name:"live" (fun () -> fun () -> None)) ]
      ~ddl:"CREATE TABLE R (a INT);" (Job_spec.Programs [])
  in
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s
                   && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  match Job_spec.to_string spec with
  | Ok _ -> Alcotest.fail "serialized a live reader"
  | Error msg ->
      Alcotest.(check bool) "message names the reader" true
        (contains ~sub:"live" msg)

let test_validation () =
  let bad version_line =
    match Job_spec.of_string version_line with
    | Ok _ -> Alcotest.failf "accepted %s" version_line
    | Error e -> e
  in
  Alcotest.(check bool) "future version refused" true
    (bad {|{"version":99,"ddl":"","workload":{"kind":"programs","texts":[]}}|}
     <> "");
  Alcotest.(check bool) "missing version refused" true
    (bad {|{"ddl":"","workload":{"kind":"programs","texts":[]}}|} <> "");
  Alcotest.(check bool) "resume without checkpoint_dir refused" true
    (bad
       {|{"version":1,"ddl":"","workload":{"kind":"programs","texts":[]},"resume":true}|}
     <> "");
  Alcotest.(check bool) "unknown workload kind refused" true
    (bad {|{"version":1,"ddl":"","workload":{"kind":"voodoo"}}|} <> "");
  Alcotest.(check bool) "unknown source kind refused" true
    (bad
       {|{"version":1,"ddl":"","sources":[{"relation":"R","kind":"carrier-pigeon"}],"workload":{"kind":"programs","texts":[]}}|}
     <> "")

let test_oracle_spec_strings () =
  List.iter
    (fun (s, spec) ->
      Alcotest.(check bool) (s ^ " parses") true
        (Job_spec.oracle_spec_of_string s = Ok spec);
      Alcotest.(check string) (s ^ " prints") s
        (Job_spec.oracle_spec_to_string spec))
    [
      ("auto", Job_spec.Auto);
      ("skeptical", Job_spec.Skeptical);
      ("threshold:0.75", Job_spec.Threshold 0.75);
    ];
  Alcotest.(check bool) "junk refused" true
    (Result.is_error (Job_spec.oracle_spec_of_string "psychic"))

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let write path contents =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)

let test_of_args () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "dbre_of_args" in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let ddl_path = Filename.concat dir "schema.sql" in
  write ddl_path
    "CREATE TABLE S (a INT, PRIMARY KEY (a));\n\
     CREATE TABLE R (a INT, b VARCHAR(4), PRIMARY KEY (a));\n";
  let data = Filename.concat dir "data" in
  Unix.mkdir data 0o755;
  write (Filename.concat data "R.csv") "a,b\n1,x\n";
  (* no S.csv: S runs with an empty extension; stray files are ignored *)
  write (Filename.concat data "Unrelated.txt") "noise";
  let programs = Filename.concat dir "programs" in
  Unix.mkdir programs 0o755;
  write (Filename.concat programs "b.sql") "SELECT a FROM R";
  write (Filename.concat programs "a.sql") "SELECT a FROM S";
  let spec =
    match
      Job_spec.of_args ~label:"cli" ~ddl:ddl_path ~data_dir:data
        ~programs_dir:programs ~engine:"parallel:2" ~oracle:"skeptical"
        ~deadline:1.5 ~max_heap_mb:64 ~on_exhausted:"fail" ~lenient:true ()
    with
    | Ok spec -> spec
    | Error e -> Alcotest.fail e
  in
  (* sources follow schema declaration order, one per CSV present *)
  (match spec.Job_spec.sources with
  | [ ("R", Source.Csv_file path) ]
    when Filename.basename path = "R.csv" ->
      ()
  | _ -> Alcotest.fail "expected exactly R's csv-file source");
  (* programs are read in name order *)
  (match spec.Job_spec.workload with
  | Job_spec.Programs [ p1; p2 ] ->
      Alcotest.(check string) "a.sql first" "SELECT a FROM S" p1;
      Alcotest.(check string) "b.sql second" "SELECT a FROM R" p2
  | _ -> Alcotest.fail "expected two programs");
  Alcotest.(check bool) "oracle folded" true
    (spec.Job_spec.oracle = Job_spec.Skeptical);
  let b = spec.Job_spec.engine.Engine.budget in
  Alcotest.(check (option (float 0.0))) "deadline folded" (Some 1.5)
    b.Engine.deadline_s;
  Alcotest.(check (option int)) "heap cap folded into words"
    (Some (64 * 1024 * 1024 / (Sys.word_size / 8)))
    b.Engine.max_heap_words;
  Alcotest.(check bool) "fail policy folded" true
    (b.Engine.on_exhausted = `Fail);
  Alcotest.(check bool) "parallelism folded" true
    (spec.Job_spec.engine.Engine.parallelism = Engine.Domains 2);
  (* the spec is self-contained: serializing it embeds the DDL text and
     keeps the CSV as a path *)
  let reparsed = of_string_exn (to_string_exn spec) in
  Alcotest.(check bool) "ddl text embedded" true
    (reparsed.Job_spec.ddl = spec.Job_spec.ddl
    && String.length spec.Job_spec.ddl > 0)

let test_of_args_errors () =
  let check_err name r =
    match r with
    | Ok _ -> Alcotest.failf "%s accepted" name
    | Error (_ : string) -> ()
  in
  check_err "missing ddl file"
    (Job_spec.of_args ~ddl:"/nonexistent/schema.sql" ());
  let ddl_path = Filename.temp_file "dbre_args" ".sql" in
  write ddl_path "CREATE TABLE R (a INT);";
  Fun.protect ~finally:(fun () -> Sys.remove ddl_path) @@ fun () ->
  check_err "unknown engine" (Job_spec.of_args ~ddl:ddl_path ~engine:"warp" ());
  check_err "unknown oracle" (Job_spec.of_args ~ddl:ddl_path ~oracle:"psychic" ());
  check_err "unknown policy"
    (Job_spec.of_args ~ddl:ddl_path ~on_exhausted:"shrug" ());
  check_err "resume without checkpoint dir"
    (Job_spec.of_args ~ddl:ddl_path ~resume:true ())

let test_supervisor_is_cancellable () =
  (* even a spec with no budget at all gets a created (cancellable)
     token: the daemon's cancel depends on it *)
  let spec = Job_spec.make ~ddl:"CREATE TABLE R (a INT);" (Job_spec.Programs []) in
  let s = Job_spec.supervisor spec in
  Alcotest.(check bool) "fresh token untripped" true
    (Supervise.tripped s = None);
  Supervise.cancel s;
  Alcotest.(check bool) "cancel trips it" true (Supervise.tripped s <> None)

let suite =
  [
    Alcotest.test_case "golden v1 JSON" `Quick test_golden;
    Alcotest.test_case "round-trip" `Quick test_roundtrip;
    Alcotest.test_case "defaults round-trip" `Quick test_defaults_roundtrip;
    Alcotest.test_case "in-memory travels as csv-inline" `Quick
      test_in_memory_travels_as_csv;
    Alcotest.test_case "reader is unserializable" `Quick
      test_reader_is_unserializable;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "oracle spec grammar" `Quick test_oracle_spec_strings;
    Alcotest.test_case "of_args folds the CLI flags" `Quick test_of_args;
    Alcotest.test_case "of_args errors" `Quick test_of_args_errors;
    Alcotest.test_case "supervisor is always cancellable" `Quick
      test_supervisor_is_cancellable;
  ]
