(* dbre — reverse-engineer a denormalized relational database.

   Subcommands:
     example   run a built-in scenario end to end
     analyze   run the pipeline on a DDL script + CSV extension + programs
     inds      stop after IND-Discovery
     discover  exhaustive FD/IND discovery baselines
     lint      span-carrying diagnostics over schemas/workloads/artifacts
     generate  emit a synthetic workload to a directory
     serve     persistent analysis daemon on a Unix-domain socket
     submit    send a job to a running daemon
     job       query/cancel jobs on a running daemon *)

open Cmdliner
open Relational

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let load_database ?(lenient = false) ?(engine = Engine.default) ~ddl_path
    ~data_dir () =
  let schema, _fks = Sqlx.Ddl.schema_of_script (read_file ddl_path) in
  let db = Database.create schema in
  let reports = ref [] in
  let mode = if lenient then `Quarantine else `Strict in
  let pool = Engine.pool engine in
  List.iter
    (fun rel ->
      let name = rel.Relation.name in
      let csv_path = Filename.concat data_dir (name ^ ".csv") in
      if Sys.file_exists csv_path then
        (* the streaming loader reads the file in chunks itself — no
           whole-file slurp — and surfaces read failures as Error.t *)
        match Csv.load_file ~mode ?pool rel csv_path with
        | Ok (table, report) ->
            Option.iter (fun r -> reports := r :: !reports) report;
            Database.replace_table db table
        | Error e -> raise (Error.Error e))
    (Schema.relations schema);
  (db, List.rev !reports)

let print_quarantine reports =
  List.iter (fun q -> Format.printf "%a@." Quarantine.pp q) reports

(* strict loading raises [Error.Error] on dirty inputs; report it as a
   clean CLI failure instead of cmdliner's "internal error" *)
let handle_errors ?(hint = false) f =
  try f ()
  with Dbre.Error.Error e ->
    Format.eprintf "dbre: %a@." Dbre.Error.pp e;
    if hint then
      Format.eprintf "hint: --lenient quarantines unparseable tuples@.";
    1

let load_programs dir =
  Sys.readdir dir |> Array.to_list |> List.sort String.compare
  |> List.map (fun f -> read_file (Filename.concat dir f))

(* ------------------------------------------------------------------ *)
(* Common args                                                          *)
(* ------------------------------------------------------------------ *)

let oracle_arg =
  let doc =
    "Expert-user mode: 'auto' (accept data verdicts), 'skeptical' (refuse \
     hidden objects), 'interactive' (prompt on stdin), or \
     'threshold:<ratio>' (force NEIs whose overlap exceeds the ratio)."
  in
  Arg.(value & opt string "auto" & info [ "oracle" ] ~docv:"MODE" ~doc)

let parse_oracle = function
  | "auto" -> Ok Dbre.Oracle.automatic
  | "skeptical" -> Ok Dbre.Oracle.skeptical
  | "interactive" -> Ok (Dbre.Oracle.interactive ())
  | s when String.length s > 10 && String.sub s 0 10 = "threshold:" -> (
      match float_of_string_opt (String.sub s 10 (String.length s - 10)) with
      | Some r -> Ok (Dbre.Oracle.threshold ~nei_ratio:r)
      | None -> Error (Printf.sprintf "bad threshold in %S" s))
  | s -> Error (Printf.sprintf "unknown oracle mode %S" s)

let engine_arg =
  let doc =
    "Extension-check engine: 'columnar' (default: dictionary-encoded \
     columns, memoized per table), 'partition', 'naive' (the row-hashing \
     baseline), 'parallel' or 'parallel:<domains>'."
  in
  Arg.(value & opt string "default" & info [ "engine" ] ~docv:"ENGINE" ~doc)

let parse_engine s =
  match Dbre.Engine.of_string s with
  | Some e -> Ok e
  | None ->
      Error
        (Printf.sprintf
           "unknown engine %S (use naive|partition|columnar|parallel[:<n>])" s)

let deadline_arg =
  let doc =
    "Wall-clock budget for the run, in seconds. When it trips, discovery \
     stages stop at their current group boundary and the result carries \
     the unverified remainder (see --on-budget-exhausted)."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECS" ~doc)

let max_heap_arg =
  let doc =
    "Major-heap budget, in MiB. Checked at the same group boundaries as \
     --deadline."
  in
  Arg.(value & opt (some int) None & info [ "max-heap" ] ~docv:"MIB" ~doc)

let on_exhausted_arg =
  let doc =
    "What a tripped budget does: 'partial' (default) degrades gracefully \
     to a typed partial result whose report lists the unverified groups; \
     'fail' aborts the stage with a resource-exhausted error."
  in
  Arg.(
    value
    & opt string "partial"
    & info [ "on-budget-exhausted" ] ~docv:"POLICY" ~doc)

let lenient_arg =
  let doc =
    "Quarantine unparseable or ill-typed tuples instead of aborting; \
     dependency discovery runs on the surviving extension and the report \
     lists the affected INDs/FDs."
  in
  Arg.(value & flag & info [ "lenient" ] ~doc)

let spill_dir_arg =
  let doc =
    "Directory for column-segment spill files (out-of-core mode): sealed \
     segments evicted under --resident-budget write their packed image \
     here and are mapped back on demand. Without it segments are pinned \
     in RAM."
  in
  Arg.(value & opt (some string) None & info [ "spill-dir" ] ~docv:"DIR" ~doc)

let resident_budget_arg =
  let doc =
    "Resident column-segment budget, in MiB: once sealed segments exceed \
     it, the coldest spill to --spill-dir. Lets analysis run on \
     extensions much larger than RAM."
  in
  Arg.(
    value & opt (some int) None & info [ "resident-budget" ] ~docv:"MIB" ~doc)

let segment_rows_arg =
  let doc = "Rows per sealed column segment (default 65536)." in
  Arg.(
    value & opt (some int) None & info [ "segment-rows" ] ~docv:"ROWS" ~doc)

(* the out-of-core policy is process-wide (Ooc), not part of the job
   spec: set it up front from the flags *)
let configure_ooc spill_dir resident_budget_mb segment_rows =
  if spill_dir = None && resident_budget_mb = None && segment_rows = None then
    Ok ()
  else if match resident_budget_mb with Some m -> m < 1 | None -> false then
    Error "--resident-budget must be at least 1 (MiB)"
  else
    try
      Ok
        (Relational.Ooc.configure ?spill_dir
           ?resident_budget_words:
             (Option.map
                (fun mib -> mib * 1024 * 1024 / (Sys.word_size / 8))
                resident_budget_mb)
           ?segment_rows ())
    with Invalid_argument msg | Sys_error msg -> Error msg

let checkpoint_arg =
  let doc = "Serialize each completed stage's artifact into $(docv)." in
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-dir" ] ~docv:"DIR" ~doc)

let resume_arg =
  let doc =
    "Resume from the checkpoints in --checkpoint-dir, skipping \
     already-completed stages."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let dot_arg =
  let doc = "Write the final EER schema as Graphviz DOT to $(docv)." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let markdown_arg =
  let doc = "Write the full report as Markdown to $(docv)." in
  Arg.(value & opt (some string) None & info [ "markdown" ] ~docv:"FILE" ~doc)

let report_result ?dot ?markdown result =
  Format.printf "%a@." Dbre.Report.pp_result result;
  Format.printf "@.=== Normal forms after Restruct ===@.";
  List.iter
    (fun (name, nf) ->
      Format.printf "%-24s %s@." name (Deps.Normal_forms.nf_to_string nf))
    (Dbre.Pipeline.nf_report result);
  (match markdown with
  | Some path ->
      write_file path (Dbre.Report.markdown result);
      Format.printf "@.Markdown report written to %s@." path
  | None -> ());
  match dot with
  | Some path ->
      write_file path
        (Er.Dot_render.render
           result.Dbre.Pipeline.translate_result.Dbre.Translate.eer);
      Format.printf "@.EER schema written to %s@." path
  | None -> ()

(* a stage failed: print the structured error, the completed-stage
   prefix, and how to resume when checkpoints were written *)
let report_partial ?checkpoint_dir (p : Dbre.Pipeline.partial) =
  Format.eprintf "pipeline failed: %a@." Dbre.Error.pp p.Dbre.Pipeline.p_error;
  let completed =
    List.filter_map
      (fun (name, done_) -> if done_ then Some name else None)
      [
        ("extract", p.Dbre.Pipeline.p_equijoins <> None);
        ("ind-discovery", p.Dbre.Pipeline.p_ind_result <> None);
        ("lhs-discovery", p.Dbre.Pipeline.p_lhs_result <> None);
        ("rhs-discovery", p.Dbre.Pipeline.p_rhs_result <> None);
        ("restruct", p.Dbre.Pipeline.p_restruct_result <> None);
      ]
  in
  Format.eprintf "completed stages: %s@."
    (if completed = [] then "(none)" else String.concat ", " completed);
  (match checkpoint_dir with
  | Some dir ->
      Format.eprintf
        "checkpoints for completed stages are in %s; rerun with --resume to \
         continue@."
        dir
  | None -> ());
  1

(* ------------------------------------------------------------------ *)
(* example                                                              *)
(* ------------------------------------------------------------------ *)

let example_cmd =
  let scenario_arg =
    let doc = "Scenario name: 'paper', 'payroll' or 'hospital'." in
    Arg.(value & pos 0 string "paper" & info [] ~docv:"SCENARIO" ~doc)
  in
  let run scenario dot markdown =
    match Workload.Scenarios.find scenario with
    | None ->
        Printf.eprintf "unknown scenario %S (try: %s)\n" scenario
          (String.concat ", "
             (List.map
                (fun s -> s.Workload.Scenarios.name)
                Workload.Scenarios.all));
        1
    | Some s -> (
        let db = s.Workload.Scenarios.database () in
        let config =
          {
            Dbre.Pipeline.default_config with
            Dbre.Pipeline.oracle = s.Workload.Scenarios.oracle ();
          }
        in
        match
          Dbre.Pipeline.run_checked ~config db
            (Dbre.Job_spec.Programs s.Workload.Scenarios.programs)
        with
        | Ok result ->
            report_result ?dot ?markdown result;
            0
        | Error p -> report_partial p)
  in
  let doc = "Run a built-in reverse-engineering scenario end to end." in
  Cmd.v
    (Cmd.info "example" ~doc)
    Term.(const run $ scenario_arg $ dot_arg $ markdown_arg)

(* ------------------------------------------------------------------ *)
(* analyze                                                              *)
(* ------------------------------------------------------------------ *)

let ddl_arg =
  let doc = "SQL DDL script declaring the legacy schema." in
  Arg.(required & opt (some file) None & info [ "ddl" ] ~docv:"FILE" ~doc)

let data_arg =
  let doc = "Directory holding one <relation>.csv per relation." in
  Arg.(required & opt (some dir) None & info [ "data" ] ~docv:"DIR" ~doc)

let programs_arg =
  let doc = "Directory of application-program sources to scan." in
  Arg.(required & opt (some dir) None & info [ "programs" ] ~docv:"DIR" ~doc)

let flow_arg =
  let doc =
    "Run the static dataflow analysis over each application program: \
     SELECT INTO / FETCH targets define host variables, later statements \
     using them become inter-statement equi-join evidence (and L109-L112 \
     diagnostics under --lint)."
  in
  Arg.(value & flag & info [ "flow" ] ~doc)

let lint_hooks_arg =
  let doc =
    "Install the linter as pipeline pre/post hooks: workload diagnostics \
     (L1xx) are printed before extraction and artifact verification \
     diagnostics (L2xx) after Translate."
  in
  Arg.(value & flag & info [ "lint" ] ~doc)

(* the pre/post pipeline hooks the --lint flag installs: diagnostics go
   to stderr and never abort the run *)
let lint_pre_hook db input =
  let schema = Database.schema db in
  let sources =
    match (input : Dbre.Pipeline.input) with
    | Dbre.Job_spec.Equijoins _ -> []
    | Dbre.Job_spec.Programs progs ->
        List.mapi
          (fun i p ->
            Dbre_lint.Lint.source
              ~name:(Printf.sprintf "prog%02d" i)
              Dbre_lint.Lint.Program p)
          progs
    | Dbre.Job_spec.Sql_scripts scripts ->
        List.mapi
          (fun i p ->
            Dbre_lint.Lint.source
              ~name:(Printf.sprintf "script%02d" i)
              Dbre_lint.Lint.Sql_script p)
          scripts
  in
  let report = Dbre_lint.Lint.run ~schema sources in
  if report.Dbre_lint.Lint.diags <> [] then
    Format.eprintf "--- lint (workload) ---@.%s"
      (Dbre_lint.Lint.render_text report)

let lint_post_hook result =
  let report = Dbre_lint.Lint.verify result in
  if report.Dbre_lint.Lint.diags <> [] then
    Format.eprintf "--- lint (verification) ---@.%s"
      (Dbre_lint.Lint.render_text report)

let with_lint_hooks lint config =
  if not lint then config
  else
    {
      config with
      Dbre.Pipeline.pre_hook = Some lint_pre_hook;
      post_hook = Some lint_post_hook;
    }

(* fold the per-run flags into one Job_spec — the exact value a daemon
   submission would carry — handling the one oracle mode that cannot
   live in a spec (interactive) as a Job.run override *)
let spec_of_flags ?label ~ddl ~data ~programs ~oracle ~engine ~deadline
    ~max_heap_mb ~on_exhausted ~lenient ~checkpoint_dir ~resume () =
  let interactive = oracle = "interactive" in
  match
    Dbre.Job_spec.of_args ?label ~ddl ?data_dir:data ?programs_dir:programs
      ~engine
      ~oracle:(if interactive then "auto" else oracle)
      ?deadline ?max_heap_mb ~on_exhausted ~lenient ?checkpoint_dir ~resume ()
  with
  | Error _ as e -> e
  | Ok spec ->
      Ok (spec, if interactive then Some (Dbre.Oracle.interactive ()) else None)

let analyze_cmd =
  let run ddl data programs oracle engine deadline max_heap_mb on_exhausted
      lenient spill_dir resident_budget segment_rows lint flow checkpoint_dir
      resume dot markdown =
    match
      Result.bind (configure_ooc spill_dir resident_budget segment_rows)
        (fun () ->
          spec_of_flags ~ddl ~data:(Some data) ~programs:(Some programs)
            ~oracle ~engine ~deadline ~max_heap_mb ~on_exhausted ~lenient
            ~checkpoint_dir ~resume ())
    with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok (spec, oracle) -> (
        handle_errors ~hint:(not lenient) @@ fun () ->
        match
          Dbre.Job.run ?oracle
            ~configure:(fun c ->
              with_lint_hooks lint
                { c with Dbre.Pipeline.workload_flow = flow })
            spec
        with
        | Ok result ->
            print_quarantine result.Dbre.Pipeline.quarantine;
            report_result ?dot ?markdown result;
            0
        | Error p ->
            print_quarantine p.Dbre.Pipeline.p_quarantine;
            if
              (not lenient)
              && p.Dbre.Pipeline.p_error.Dbre.Error.stage = Some Dbre.Error.Load
            then
              Format.eprintf "hint: --lenient quarantines unparseable tuples@.";
            report_partial ?checkpoint_dir p)
  in
  let doc =
    "Reverse-engineer a database given its DDL, extension and programs."
  in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(
      const run $ ddl_arg $ data_arg $ programs_arg $ oracle_arg $ engine_arg
      $ deadline_arg $ max_heap_arg $ on_exhausted_arg $ lenient_arg
      $ spill_dir_arg $ resident_budget_arg $ segment_rows_arg
      $ lint_hooks_arg $ flow_arg $ checkpoint_arg $ resume_arg $ dot_arg
      $ markdown_arg)

(* ------------------------------------------------------------------ *)
(* inds                                                                 *)
(* ------------------------------------------------------------------ *)

let inds_cmd =
  let run ddl data programs oracle engine lenient =
    match (parse_oracle oracle, parse_engine engine) with
    | Error msg, _ | _, Error msg ->
        prerr_endline msg;
        1
    | Ok oracle, Ok engine ->
        handle_errors ~hint:(not lenient) @@ fun () ->
        let db, quarantine =
          load_database ~lenient ~engine ~ddl_path:ddl ~data_dir:data ()
        in
        print_quarantine quarantine;
        let joins =
          let extraction = Sqlx.Embedded.scan_files (load_programs programs) in
          Sqlx.Equijoin.dedupe
            (List.concat_map
               (Sqlx.Equijoin.of_statement (Database.schema db))
               extraction.Sqlx.Embedded.statements)
        in
        Format.printf "Equi-joins:@.%a@.@." Dbre.Report.pp_equijoins joins;
        let r = Dbre.Ind_discovery.run ~engine oracle db joins in
        Format.printf "Trace:@.%a@.@." Dbre.Report.pp_ind_steps
          r.Dbre.Ind_discovery.steps;
        Format.printf "IND:@.%a@." Dbre.Report.pp_inds
          r.Dbre.Ind_discovery.inds;
        0
  in
  let doc = "Elicit inclusion dependencies only (stop after §6.1)." in
  Cmd.v
    (Cmd.info "inds" ~doc)
    Term.(
      const run $ ddl_arg $ data_arg $ programs_arg $ oracle_arg $ engine_arg
      $ lenient_arg)

(* ------------------------------------------------------------------ *)
(* discover (exhaustive baselines)                                      *)
(* ------------------------------------------------------------------ *)

let discover_cmd =
  let what_arg =
    let doc = "'fds', 'inds' or 'keys'." in
    Arg.(value & pos 0 string "fds" & info [] ~docv:"WHAT" ~doc)
  in
  let max_lhs_arg =
    let doc = "Maximum FD left-hand-side size." in
    Arg.(value & opt int 2 & info [ "max-lhs" ] ~doc)
  in
  let run what ddl data max_lhs =
    handle_errors @@ fun () ->
    let db, _ = load_database ~ddl_path:ddl ~data_dir:data () in
    (match what with
    | "fds" ->
        List.iter
          (fun rel ->
            let name = rel.Relation.name in
            let fds, stats =
              Deps.Fd_infer.discover ~max_lhs ~rel:name
                (Database.table db name)
            in
            Format.printf "-- %s (%d candidates tested):@." name
              stats.Deps.Fd_infer.candidates_tested;
            List.iter (fun fd -> Format.printf "  %a@." Deps.Fd.pp fd) fds)
          (Schema.relations (Database.schema db))
    | "inds" ->
        let inds, stats = Deps.Ind_infer.discover_unary db in
        Format.printf
          "-- unary INDs (%d pairs considered, %d tested):@."
          stats.Deps.Ind_infer.pairs_considered
          stats.Deps.Ind_infer.pairs_tested;
        List.iter (fun ind -> Format.printf "  %a@." Deps.Ind.pp ind) inds
    | "keys" ->
        List.iter
          (fun (rel, keys) ->
            Format.printf "-- %s:@." rel;
            List.iter
              (fun k -> Format.printf "  unique (%s)@." (String.concat ", " k))
              keys)
          (Deps.Key_infer.suggest ~max_size:max_lhs db)
    | other -> Printf.eprintf "unknown target %S (use fds|inds|keys)\n" other);
    0
  in
  let doc =
    "Exhaustive dependency discovery (the baseline the paper's \
     query-guided method avoids)."
  in
  Cmd.v
    (Cmd.info "discover" ~doc)
    Term.(const run $ what_arg $ ddl_arg $ data_arg $ max_lhs_arg)

(* ------------------------------------------------------------------ *)
(* migrate                                                              *)
(* ------------------------------------------------------------------ *)

let migrate_cmd =
  let out_arg =
    let doc = "Write the migration SQL script to $(docv) (default stdout)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let verify_arg =
    let doc =
      "Re-apply the generated script to a fresh copy of the database and \
       check the result matches the in-memory restructuring."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let run ddl data programs oracle engine lenient out verify =
    match (parse_oracle oracle, parse_engine engine) with
    | Error msg, _ | _, Error msg ->
        prerr_endline msg;
        1
    | Ok oracle, Ok engine -> (
        handle_errors ~hint:(not lenient) @@ fun () ->
        let db, quarantine =
          load_database ~lenient ~engine ~ddl_path:ddl ~data_dir:data ()
        in
        print_quarantine quarantine;
        let original = Database.schema db in
        let config =
          {
            Dbre.Pipeline.default_config with
            Dbre.Pipeline.oracle;
            engine;
            on_bad_tuple = (if lenient then `Quarantine else `Fail);
          }
        in
        match
          Dbre.Pipeline.run_checked ~config db
            (Dbre.Job_spec.Programs (load_programs programs))
        with
        | Error p -> report_partial p
        | Ok result ->
            let sql = Dbre.Migration.script ~original result in
            (match out with
            | Some path ->
                write_file path sql;
                Printf.printf "migration written to %s\n" path
            | None -> print_string sql);
            if verify then begin
              let fresh, _ =
                load_database ~lenient ~engine ~ddl_path:ddl ~data_dir:data ()
              in
              Sqlx.Exec.exec_script fresh sql;
              let expected =
                Option.get
                  result.Dbre.Pipeline.restruct_result.Dbre.Restruct.database
              in
              let ok =
                List.for_all
                  (fun rel ->
                    let name = rel.Relation.name in
                    let sort t =
                      List.sort compare (Table.to_lists (Database.table t name))
                    in
                    sort fresh = sort expected)
                  (Schema.relations (Database.schema expected))
              in
              Printf.printf "verification: %s\n" (if ok then "OK" else "FAILED");
              if not ok then exit 1
            end;
            0)
  in
  let doc =
    "Generate (and optionally verify) the SQL migration script that \
     restructures the legacy database to 3NF."
  in
  Cmd.v
    (Cmd.info "migrate" ~doc)
    Term.(
      const run $ ddl_arg $ data_arg $ programs_arg $ oracle_arg $ engine_arg
      $ lenient_arg $ out_arg $ verify_arg)

(* ------------------------------------------------------------------ *)
(* lint                                                                 *)
(* ------------------------------------------------------------------ *)

let scenario_lint_sources (s : Workload.Scenarios.t) =
  let schema = Database.schema (s.Workload.Scenarios.database ()) in
  let sources =
    List.mapi
      (fun i p ->
        Dbre_lint.Lint.source
          ~name:(Printf.sprintf "%s/prog%02d" s.Workload.Scenarios.name i)
          Dbre_lint.Lint.Program p)
      s.Workload.Scenarios.programs
  in
  (schema, sources)

let lint_scenario s =
  let schema, sources = scenario_lint_sources s in
  let workload = Dbre_lint.Lint.run ~schema sources in
  Dbre_lint.Lint.merge workload
    {
      Dbre_lint.Lint.empty with
      Dbre_lint.Lint.diags = Dbre_lint.Rules_schema.check_schema schema;
    }

let lint_cmd =
  let scenario_arg =
    let doc =
      "Lint a built-in scenario ('paper', 'payroll', 'hospital') instead of \
       --ddl/--programs; 'all' lints the whole examples corpus."
    in
    Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"NAME" ~doc)
  in
  let ddl_arg =
    let doc = "SQL DDL script to check with the schema rules (L0xx)." in
    Arg.(value & opt (some file) None & info [ "ddl" ] ~docv:"FILE" ~doc)
  in
  let programs_arg =
    let doc =
      "Directory of application programs to check with the workload rules \
       (L1xx)."
    in
    Arg.(value & opt (some dir) None & info [ "programs" ] ~docv:"DIR" ~doc)
  in
  let data_arg =
    let doc =
      "Directory of <relation>.csv extensions — required by --verify when \
       not linting a scenario."
    in
    Arg.(value & opt (some dir) None & info [ "data" ] ~docv:"DIR" ~doc)
  in
  let json_arg =
    let doc = "Emit machine-readable JSON instead of human text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let verify_arg =
    let doc =
      "Also run the pipeline and check its artifacts with the verification \
       rules (L2xx): 3NF after Restruct, key-based RICs, no dangling INDs, \
       well-formed EER."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let fail_on_arg =
    let doc =
      "Exit non-zero when a diagnostic of this severity (or worse) is \
       reported: 'info', 'warning' or 'error'."
    in
    Arg.(value & opt string "error" & info [ "fail-on" ] ~docv:"SEVERITY" ~doc)
  in
  let verify_pipeline ~config db programs =
    match
      Dbre.Pipeline.run_checked ~config db (Dbre.Job_spec.Programs programs)
    with
    | Ok result -> Ok (Dbre_lint.Lint.verify result)
    | Error p -> Stdlib.Error p
  in
  let run scenario ddl programs data json verify fail_on =
    match Dbre_lint.Diagnostic.severity_of_string fail_on with
    | None ->
        Printf.eprintf "unknown severity %S (use info|warning|error)\n" fail_on;
        1
    | Some fail_on -> (
        handle_errors @@ fun () ->
        let finish report =
          if json then print_string (Dbre_lint.Lint.render_json report)
          else print_string (Dbre_lint.Lint.render_text report);
          if json then print_newline ();
          if Dbre_lint.Lint.should_fail ~fail_on report then 1 else 0
        in
        match (scenario, ddl) with
        | Some name, _ -> (
            let scenarios =
              if name = "all" then Some Workload.Scenarios.all
              else
                Option.map (fun s -> [ s ]) (Workload.Scenarios.find name)
            in
            match scenarios with
            | None ->
                Printf.eprintf "unknown scenario %S (try: all, %s)\n" name
                  (String.concat ", "
                     (List.map
                        (fun s -> s.Workload.Scenarios.name)
                        Workload.Scenarios.all));
                1
            | Some scenarios ->
                let static =
                  List.fold_left
                    (fun acc s -> Dbre_lint.Lint.merge acc (lint_scenario s))
                    Dbre_lint.Lint.empty scenarios
                in
                if not verify then finish static
                else
                  let rec verify_all acc = function
                    | [] -> finish acc
                    | s :: rest -> (
                        let db = s.Workload.Scenarios.database () in
                        let config =
                          {
                            Dbre.Pipeline.default_config with
                            Dbre.Pipeline.oracle = s.Workload.Scenarios.oracle ();
                          }
                        in
                        match
                          verify_pipeline ~config db
                            s.Workload.Scenarios.programs
                        with
                        | Ok r -> verify_all (Dbre_lint.Lint.merge acc r) rest
                        | Stdlib.Error p -> report_partial p)
                  in
                  verify_all static scenarios)
        | None, Some ddl_path -> (
            let sources =
              Dbre_lint.Lint.source ~name:(Filename.basename ddl_path)
                Dbre_lint.Lint.Schema_script (read_file ddl_path)
              ::
              (match programs with
              | None -> []
              | Some dir ->
                  Sys.readdir dir |> Array.to_list |> List.sort String.compare
                  |> List.map (fun f ->
                         Dbre_lint.Lint.source ~name:f Dbre_lint.Lint.Program
                           (read_file (Filename.concat dir f))))
            in
            let static = Dbre_lint.Lint.run sources in
            match (verify, data) with
            | false, _ -> finish static
            | true, None ->
                prerr_endline "--verify without --scenario requires --data";
                1
            | true, Some data_dir -> (
                let db, _ =
                  load_database ~ddl_path ~data_dir ()
                in
                let progs =
                  match programs with
                  | None -> []
                  | Some dir -> load_programs dir
                in
                match
                  verify_pipeline ~config:Dbre.Pipeline.default_config db progs
                with
                | Ok r -> finish (Dbre_lint.Lint.merge static r)
                | Stdlib.Error p -> report_partial p))
        | None, None ->
            prerr_endline "lint: give --scenario NAME|all or --ddl FILE";
            1)
  in
  let doc =
    "Statically check schemas (L0xx), embedded-SQL workloads (L1xx) and — \
     with --verify — pipeline artifacts (L2xx), reporting span-carrying \
     diagnostics."
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(
      const run $ scenario_arg $ ddl_arg $ programs_arg $ data_arg $ json_arg
      $ verify_arg $ fail_on_arg)

(* ------------------------------------------------------------------ *)
(* generate                                                             *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let out_arg =
    let doc = "Output directory (created if missing)." in
    Arg.(required & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let seed_arg =
    let doc = "Generator seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~doc)
  in
  let entities_arg =
    Arg.(value & opt int 4 & info [ "entities" ] ~doc:"Base entity count.")
  in
  let rows_arg =
    Arg.(value & opt int 1000 & info [ "rows" ] ~doc:"Rows per entity.")
  in
  let scale_arg =
    let doc =
      "Multiply every extension size (entity and denormalized rows) by \
       $(docv); e.g. --scale 500 turns the default workload into \
       million-tuple denormalized extensions."
    in
    Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"FACTOR" ~doc)
  in
  let run out seed entities rows scale =
    if not (scale > 0.) then begin
      Printf.eprintf "dbre generate: --scale must be positive (got %g)\n" scale;
      exit 2
    end;
    let spec =
      Workload.Gen_schema.scale scale
        {
          Workload.Gen_schema.default_spec with
          Workload.Gen_schema.seed = Int64.of_int seed;
          n_entities = entities;
          rows_per_entity = rows;
        }
    in
    let g = Workload.Gen_schema.generate spec in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let data_dir = Filename.concat out "data" in
    let prog_dir = Filename.concat out "programs" in
    List.iter
      (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755)
      [ data_dir; prog_dir ];
    List.iter
      (fun rel ->
        let name = rel.Relation.name in
        write_file
          (Filename.concat data_dir (name ^ ".csv"))
          (Csv.dump_table (Database.table g.Workload.Gen_schema.db name)))
      (Schema.relations (Database.schema g.Workload.Gen_schema.db));
    List.iteri
      (fun i src ->
        write_file
          (Filename.concat prog_dir (Printf.sprintf "prog%02d.cob" i))
          src)
      g.Workload.Gen_schema.programs;
    (* a DDL script for the generated schema *)
    let buf = Buffer.create 1024 in
    List.iter
      (fun rel ->
        Buffer.add_string buf (Sqlx.Ddl.create_table_sql rel ^ ";\n"))
      (Schema.relations (Database.schema g.Workload.Gen_schema.db));
    write_file (Filename.concat out "schema.sql") (Buffer.contents buf);
    Printf.printf "wrote %s (schema.sql, data/, programs/)\n" out;
    0
  in
  let doc = "Generate a synthetic denormalized workload to a directory." in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(const run $ out_arg $ seed_arg $ entities_arg $ rows_arg $ scale_arg)

(* ------------------------------------------------------------------ *)
(* serve / submit / job                                                 *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  let doc = "Unix-domain socket path of the analysis daemon." in
  Arg.(
    required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let state_dir_arg =
    let doc =
      "Persist job specs, per-stage checkpoints and artifacts under \
       $(docv), so a restarted daemon re-adopts settled jobs and resumes \
       interrupted ones from their last completed stage."
    in
    Arg.(
      value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR" ~doc)
  in
  let max_jobs_arg =
    let doc =
      "Number of jobs run concurrently (each under its own supervision \
       budget; engine-level domain parallelism is shared)."
    in
    Arg.(value & opt int 2 & info [ "max-jobs" ] ~docv:"N" ~doc)
  in
  let run socket state_dir max_jobs =
    let server = Dbre_serve.Server.create ~max_jobs ?state_dir ~socket () in
    Printf.printf "dbre: serving on %s%s (max %d concurrent jobs)\n%!" socket
      (match state_dir with
      | Some d -> Printf.sprintf ", state in %s" d
      | None -> "")
      max_jobs;
    Dbre_serve.Server.run server;
    0
  in
  let doc =
    "Run the persistent analysis daemon: accepts jobs over a length-prefixed \
     JSON protocol, streams per-stage progress, survives restarts via its \
     state directory."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(const run $ socket_arg $ state_dir_arg $ max_jobs_arg)

let print_event ev =
  let s k = Option.value ~default:"" (Json.mem_string k ev) in
  match s "kind" with
  | "loading" -> Printf.printf "loading %s\n%!" (s "relation")
  | "loaded" ->
      Printf.printf "loaded %s (%d rows)\n%!" (s "relation")
        (Option.value ~default:0 (Json.mem_int "rows" ev))
  | "stage" -> Printf.printf "[%s] %s\n%!" (s "stage") (s "phase")
  | "diagnostic" ->
      Printf.printf "%s[%s]: %s\n%!" (s "severity") (s "code") (s "message")
  | "settled" -> Printf.printf "settled: %s\n%!" (s "state")
  | _ -> print_endline (Json.to_string ev)

let print_artifacts artifacts =
  List.iter
    (fun (name, text) ->
      Printf.printf "=== %s ===\n%s%s" name text
        (if String.length text > 0 && text.[String.length text - 1] = '\n'
         then ""
         else "\n"))
    artifacts

let with_client socket f =
  match Dbre_serve.Client.connect socket with
  | exception Unix.Unix_error (err, _, _) ->
      Printf.eprintf "dbre: cannot connect to %s: %s\n" socket
        (Unix.error_message err);
      1
  | client ->
      Fun.protect ~finally:(fun () -> Dbre_serve.Client.close client)
        (fun () -> f client)

let protocol_error (code, msg) =
  Printf.eprintf "dbre: %s: %s\n" code msg;
  1

let submit_cmd =
  let data_arg =
    let doc = "Directory holding one <relation>.csv per relation." in
    Arg.(value & opt (some dir) None & info [ "data" ] ~docv:"DIR" ~doc)
  in
  let programs_arg =
    let doc = "Directory of application-program sources to scan." in
    Arg.(value & opt (some dir) None & info [ "programs" ] ~docv:"DIR" ~doc)
  in
  let label_arg =
    let doc = "Display label for the job." in
    Arg.(value & opt (some string) None & info [ "label" ] ~docv:"NAME" ~doc)
  in
  let wait_arg =
    let doc =
      "Stream progress events until the job settles, then print its \
       artifacts."
    in
    Arg.(value & flag & info [ "wait" ] ~doc)
  in
  let run socket ddl data programs label oracle engine deadline max_heap_mb
      on_exhausted lenient wait =
    match
      spec_of_flags ?label ~ddl ~data ~programs ~oracle ~engine ~deadline
        ~max_heap_mb ~on_exhausted ~lenient ~checkpoint_dir:None ~resume:false
        ()
    with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok (spec, _interactive) -> (
        with_client socket @@ fun client ->
        match Dbre_serve.Client.submit client spec with
        | Error e -> protocol_error e
        | Ok (id, diagnostics) -> (
            List.iter print_event diagnostics;
            Printf.printf "submitted %s\n%!" id;
            if not wait then 0
            else
              let rec stream since =
                match Dbre_serve.Client.watch client ~since id with
                | Error e -> Error e
                | Ok (events, next, settled) ->
                    List.iter print_event events;
                    if settled then Ok () else stream next
              in
              match
                Result.bind (stream 0) (fun () ->
                    Dbre_serve.Client.artifacts client id)
              with
              | Error e -> protocol_error e
              | Ok (artifacts, state) ->
                  print_artifacts artifacts;
                  if state = "done" then 0 else 1))
  in
  let doc =
    "Submit an analysis job to a running daemon (same flags as analyze; the \
     job spec travels as JSON over the socket)."
  in
  Cmd.v
    (Cmd.info "submit" ~doc)
    Term.(
      const run $ socket_arg $ ddl_arg $ data_arg $ programs_arg $ label_arg
      $ oracle_arg $ engine_arg $ deadline_arg $ max_heap_arg
      $ on_exhausted_arg $ lenient_arg $ wait_arg)

let job_cmd =
  let action_arg =
    let doc =
      "'list', 'status', 'events', 'cancel', 'artifacts', 'mutate', \
       'refresh' or 'shutdown'."
    in
    Arg.(value & pos 0 string "list" & info [] ~docv:"ACTION" ~doc)
  in
  let id_arg =
    let doc = "Job id (returned by submit)." in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let relation_arg =
    let doc = "Relation to mutate (with the 'mutate' action)." in
    Arg.(value & opt (some string) None & info [ "relation" ] ~docv:"NAME" ~doc)
  in
  let insert_arg =
    let doc =
      "Row to append, as comma-separated values typed like CSV ingestion \
       (repeatable)."
    in
    Arg.(value & opt_all string [] & info [ "insert" ] ~docv:"ROW" ~doc)
  in
  let delete_arg =
    let doc =
      "Comma-separated row indices to delete (current numbering; applied \
       before the inserts)."
    in
    Arg.(value & opt string "" & info [ "delete" ] ~docv:"IDXS" ~doc)
  in
  let run socket action id relation insert_rows delete_idxs =
    with_client socket @@ fun client ->
    let with_id f =
      match id with
      | None ->
          Printf.eprintf "dbre: job %s needs a job id\n" action;
          1
      | Some id -> f id
    in
    match action with
    | "list" -> (
        match Dbre_serve.Client.jobs client with
        | Error e -> protocol_error e
        | Ok jobs ->
            List.iter
              (fun j ->
                let s k = Option.value ~default:"" (Json.mem_string k j) in
                Printf.printf "%-12s %-10s %s\n" (s "id") (s "state")
                  (s "label"))
              jobs;
            0)
    | "status" ->
        with_id (fun id ->
            match Dbre_serve.Client.status client id with
            | Error e -> protocol_error e
            | Ok status ->
                print_endline (Json.to_string status);
                0)
    | "events" ->
        with_id (fun id ->
            match Dbre_serve.Client.events client id with
            | Error e -> protocol_error e
            | Ok (events, _, _) ->
                List.iter print_event events;
                0)
    | "cancel" ->
        with_id (fun id ->
            match Dbre_serve.Client.cancel client id with
            | Error e -> protocol_error e
            | Ok state ->
                Printf.printf "%s: %s\n" id state;
                0)
    | "artifacts" ->
        with_id (fun id ->
            match Dbre_serve.Client.artifacts client id with
            | Error e -> protocol_error e
            | Ok (artifacts, _) ->
                print_artifacts artifacts;
                0)
    | "mutate" ->
        with_id (fun id ->
            match relation with
            | None ->
                Printf.eprintf "dbre: job mutate needs --relation\n";
                1
            | Some rel -> (
                let insert =
                  List.map
                    (fun row ->
                      List.map
                        (fun cell -> Value.parse (String.trim cell))
                        (String.split_on_char ',' row))
                    insert_rows
                in
                match
                  if delete_idxs = "" then Ok []
                  else
                    try
                      Ok
                        (List.map
                           (fun s -> int_of_string (String.trim s))
                           (String.split_on_char ',' delete_idxs))
                    with Failure _ ->
                      Error
                        (Printf.sprintf "dbre: bad --delete %S" delete_idxs)
                with
                | Error msg ->
                    prerr_endline msg;
                    1
                | Ok delete -> (
                    match
                      Dbre_serve.Client.mutate client ~insert ~delete id rel
                    with
                    | Error e -> protocol_error e
                    | Ok (cardinality, version) ->
                        Printf.printf "%s: %s now %d rows (version %d)\n" id
                          rel cardinality version;
                        0)))
    | "refresh" ->
        with_id (fun id ->
            match Dbre_serve.Client.refresh client id with
            | Error e -> protocol_error e
            | Ok (report, state) ->
                print_endline (Json.to_string report);
                Printf.printf "%s: %s\n" id state;
                if state = "done" then 0 else 1)
    | "shutdown" ->
        Dbre_serve.Client.shutdown client;
        0
    | other ->
        Printf.eprintf
          "dbre: unknown job action %S (use \
           list|status|events|cancel|artifacts|mutate|refresh|shutdown)\n"
          other;
        1
  in
  let doc =
    "Inspect, cancel, mutate or delta-refresh jobs on a running analysis \
     daemon."
  in
  Cmd.v (Cmd.info "job" ~doc)
    Term.(
      const run $ socket_arg $ action_arg $ id_arg $ relation_arg $ insert_arg
      $ delete_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "reverse engineering of denormalized relational databases" in
  let info = Cmd.info "dbre" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            example_cmd; analyze_cmd; inds_cmd; discover_cmd; migrate_cmd;
            lint_cmd; generate_cmd; serve_cmd; submit_cmd; job_cmd;
          ]))
